"""Making the Theta(log* n) row visible: sweep the identifier space.

``log* n`` is at most 5 for every n below ``2^65536``, so no feasible
n-sweep can display log*-growth directly.  The round count of the
weak-2-coloring pipeline, however, is ``k + O(log* C)`` where ``C`` is
the size of the space the initial coloring lives in — so sweeping the
*identifier space* across tower sizes (``2^8, 2^64, 2^1024, ...``)
exposes exactly the Cole-Vishkin log* mechanism the Theta(log* n) class
is made of.  This is the honest finite-scale rendering of Table 1 row 3
and of Lemma 2's O(log* c) term.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from ..algorithms.cole_vishkin import cv_iterations_needed, log_star
from ..algorithms.weak_coloring import weak_two_coloring_from_ids
from ..graphs.generators import balanced_regular_tree
from ..graphs.graph import Graph
from ..graphs.implicit import implicit_tree_of_size_at_least
from ..lcl.catalog import WeakColoring

__all__ = [
    "LogStarSweepPoint",
    "LogStarSweepResult",
    "run_logstar_sweep",
    "DEFAULT_ID_BITS",
    "ImplicitLogStarPoint",
    "ImplicitLogStarResult",
    "run_logstar_sweep_implicit",
]

#: Identifier-space bit widths swept by default: towers of growth.
DEFAULT_ID_BITS = (8, 16, 64, 256, 1024, 4096, 16384, 65536)


@dataclass
class LogStarSweepPoint:
    """One sweep point: identifier space ``2**id_bits``."""

    id_bits: int
    log_star_of_space: int
    predicted_cv_rounds: int
    measured_rounds: int
    verified: bool


@dataclass
class LogStarSweepResult:
    """The whole sweep."""

    points: List[LogStarSweepPoint] = field(default_factory=list)

    def rounds_series(self) -> List[Tuple[int, int]]:
        return [(p.id_bits, p.measured_rounds) for p in self.points]

    def monotone_in_log_star(self) -> bool:
        """Rounds must be non-decreasing in the identifier space size."""
        rounds = [p.measured_rounds for p in self.points]
        return all(b >= a for a, b in zip(rounds, rounds[1:]))


def run_logstar_sweep(
    id_bits: Sequence[int] = DEFAULT_ID_BITS,
    tree_depth: int = 4,
    rng_seed: int = 0,
) -> LogStarSweepResult:
    """Run the pipeline on one tree under ever-larger identifier spaces.

    Identifiers are sampled uniformly (and distinctly) from
    ``{1 .. 2**bits}``; the graph stays fixed, so every change in the
    round count is the log* term moving.
    """
    tree = balanced_regular_tree(4, tree_depth)
    rng = random.Random(rng_seed)
    result = LogStarSweepResult()
    verifier = WeakColoring(2)
    for bits in id_bits:
        space = 1 << bits
        ids: List[int] = []
        seen = set()
        while len(ids) < tree.n:
            candidate = rng.randint(1, space)
            if candidate not in seen:
                seen.add(candidate)
                ids.append(candidate)
        out = weak_two_coloring_from_ids(tree, ids, id_space=space)
        verified = not verifier.verify(tree, out.labels)
        result.points.append(
            LogStarSweepPoint(
                id_bits=bits,
                log_star_of_space=1 + log_star(float(bits)),  # log*(2^b) = 1 + log*(b)
                predicted_cv_rounds=cv_iterations_needed(bits + 2),
                measured_rounds=out.rounds,
                verified=verified,
            )
        )
    return result


# ----------------------------------------------------------------------
# The implicit n >= 10^6 regime
# ----------------------------------------------------------------------

@dataclass
class ImplicitLogStarPoint:
    """One headline-n point of the widened sweep.

    ``distinct_classes`` is the exact anonymous radius-``r`` class
    count (closed-form strata); ``predicted_cv_rounds`` is the
    Cole-Vishkin iteration count for the *natural* identifier space at
    this n (``n.bit_length()`` bits) — the quantity whose log*-growth
    the materialized sweep can only fake by inflating the id space on
    a tiny tree.
    """

    n: int
    tree_depth: int
    distinct_classes: int
    class_bound: int
    id_bits: int
    log_star_n: int
    predicted_cv_rounds: int


@dataclass
class ImplicitLogStarResult:
    """The widened sweep: real n moving, structure exact."""

    points: List[ImplicitLogStarPoint] = field(default_factory=list)

    def monotone_in_log_star(self) -> bool:
        """CV predictions must be non-decreasing as n grows."""
        rounds = [p.predicted_cv_rounds for p in self.points]
        return all(b >= a for a, b in zip(rounds, rounds[1:]))

    def classes_stay_bounded(self) -> bool:
        """Class counts must respect the O(depth) strata ceiling."""
        return all(p.distinct_classes <= p.class_bound for p in self.points)


def run_logstar_sweep_implicit(
    n: int = 1_000_000,
    factors: Sequence[int] = (1, 10, 100),
    delta: int = 4,
    radius: int = 2,
) -> ImplicitLogStarResult:
    """Sweep real tree sizes ``n * factor`` with O(classes) memory.

    The materialized sweep (:func:`run_logstar_sweep`) holds the graph
    fixed and inflates the identifier space; at implicit scale the
    graph itself grows through 10^6-10^8 nodes while the exact class
    structure (closed-form strata, never materialized) certifies that
    the instance really has n nodes and O(depth) distinct views —
    so the log* term is now driven by the honest quantity, the
    identifier space ``2**n.bit_length()`` a real n-node instance
    needs.
    """
    from ..local_model.batch_views import expander_for

    result = ImplicitLogStarResult()
    for factor in factors:
        tree, depth = implicit_tree_of_size_at_least(delta, n * factor)
        counter = expander_for(tree, "implicit")
        cc = counter.class_counts(radius)
        if cc.total != tree.n:
            raise RuntimeError(
                f"strata cover {cc.total} of {tree.n} nodes at factor {factor}"
            )
        bits = tree.n.bit_length()
        result.points.append(
            ImplicitLogStarPoint(
                n=tree.n,
                tree_depth=depth,
                distinct_classes=cc.class_count,
                class_bound=len(tree.strata(radius)),
                id_bits=bits,
                log_star_n=log_star(float(tree.n)),
                predicted_cv_rounds=cv_iterations_needed(bits + 2),
            )
        )
    return result
