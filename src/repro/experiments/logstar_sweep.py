"""Making the Theta(log* n) row visible: sweep the identifier space.

``log* n`` is at most 5 for every n below ``2^65536``, so no feasible
n-sweep can display log*-growth directly.  The round count of the
weak-2-coloring pipeline, however, is ``k + O(log* C)`` where ``C`` is
the size of the space the initial coloring lives in — so sweeping the
*identifier space* across tower sizes (``2^8, 2^64, 2^1024, ...``)
exposes exactly the Cole-Vishkin log* mechanism the Theta(log* n) class
is made of.  This is the honest finite-scale rendering of Table 1 row 3
and of Lemma 2's O(log* c) term.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from ..algorithms.cole_vishkin import cv_iterations_needed, log_star
from ..algorithms.weak_coloring import weak_two_coloring_from_ids
from ..graphs.generators import balanced_regular_tree
from ..graphs.graph import Graph
from ..lcl.catalog import WeakColoring

__all__ = ["LogStarSweepPoint", "LogStarSweepResult", "run_logstar_sweep", "DEFAULT_ID_BITS"]

#: Identifier-space bit widths swept by default: towers of growth.
DEFAULT_ID_BITS = (8, 16, 64, 256, 1024, 4096, 16384, 65536)


@dataclass
class LogStarSweepPoint:
    """One sweep point: identifier space ``2**id_bits``."""

    id_bits: int
    log_star_of_space: int
    predicted_cv_rounds: int
    measured_rounds: int
    verified: bool


@dataclass
class LogStarSweepResult:
    """The whole sweep."""

    points: List[LogStarSweepPoint] = field(default_factory=list)

    def rounds_series(self) -> List[Tuple[int, int]]:
        return [(p.id_bits, p.measured_rounds) for p in self.points]

    def monotone_in_log_star(self) -> bool:
        """Rounds must be non-decreasing in the identifier space size."""
        rounds = [p.measured_rounds for p in self.points]
        return all(b >= a for a, b in zip(rounds, rounds[1:]))


def run_logstar_sweep(
    id_bits: Sequence[int] = DEFAULT_ID_BITS,
    tree_depth: int = 4,
    rng_seed: int = 0,
) -> LogStarSweepResult:
    """Run the pipeline on one tree under ever-larger identifier spaces.

    Identifiers are sampled uniformly (and distinctly) from
    ``{1 .. 2**bits}``; the graph stays fixed, so every change in the
    round count is the log* term moving.
    """
    tree = balanced_regular_tree(4, tree_depth)
    rng = random.Random(rng_seed)
    result = LogStarSweepResult()
    verifier = WeakColoring(2)
    for bits in id_bits:
        space = 1 << bits
        ids: List[int] = []
        seen = set()
        while len(ids) < tree.n:
            candidate = rng.randint(1, space)
            if candidate not in seen:
                seen.add(candidate)
                ids.append(candidate)
        out = weak_two_coloring_from_ids(tree, ids, id_space=space)
        verified = not verifier.verify(tree, out.labels)
        result.points.append(
            LogStarSweepPoint(
                id_bits=bits,
                log_star_of_space=1 + log_star(float(bits)),  # log*(2^b) = 1 + log*(b)
                predicted_cv_rounds=cv_iterations_needed(bits + 2),
                measured_rounds=out.rounds,
                verified=verified,
            )
        )
    return result
