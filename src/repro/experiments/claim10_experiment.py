"""Claim 10: counting independent executions inside a ball.

Runs the expansion construction on concrete balanced oriented trees for
a sweep of round budgets ``t`` and compares the harvested set sizes
against the closed-form guarantee ``n^{1/(3(2t+1))}`` (with the
effective ``n = |B_k(v)|^3`` the claim's calibration implies).  Also
evaluates the end-to-end global success ceiling for given local failure
probabilities — the amplification step that feeds Lemma 9.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..analysis.independence import (
    claim10_global_success_bound,
    claim10_set_size_bound,
    independent_execution_set,
)
from ..graphs.generators import balanced_regular_tree
from ..graphs.orientation import orient_tree

__all__ = ["Claim10Point", "Claim10Result", "run_claim10"]


@dataclass
class Claim10Point:
    """One (t, |S|) measurement."""

    t: int
    set_size: int
    effective_n: int
    closed_form_bound: float
    in_regime: bool  # the tree was deep enough for at least one expansion
    bound_holds: bool
    pairwise_verified: bool
    global_success_ceiling_at_p01: float


@dataclass
class Claim10Result:
    """The sweep for one tree."""

    delta: int
    depth: int
    n: int
    seed_radius: int
    points: List[Claim10Point] = field(default_factory=list)

    def all_bounds_hold(self) -> bool:
        return all(p.bound_holds for p in self.points)


def run_claim10(
    delta: int = 4,
    depth: int = 10,
    ts: Sequence[int] = (1, 2, 3),
    seed_radius: int = 2,
    verify_pairwise: bool = True,
) -> Claim10Result:
    """Build S for each t on one balanced oriented tree.

    ``seed_radius`` defaults to 2 rather than the paper's 7 — the
    construction is identical, only the constant changes, and radius 7
    needs trees of depth > 11 (about 10^6 nodes) before the first
    expansion step fits.  Pass ``seed_radius=7`` with ``depth >= 12``
    for the literal construction.
    """
    if delta % 2 != 0:
        raise ValueError("the oriented-tree setting needs even Delta")
    tree = balanced_regular_tree(delta, depth)
    orientation = orient_tree(tree, delta // 2)
    ball_radius = depth - 1  # leaf-free ball
    effective_n = len(tree.ball(0, ball_radius)) ** 3
    result = Claim10Result(
        delta=delta, depth=depth, n=tree.n, seed_radius=seed_radius
    )
    for t in ts:
        harvest = independent_execution_set(
            tree,
            orientation,
            center=0,
            t=t,
            ball_radius=ball_radius,
            seed_radius=seed_radius,
            verify=verify_pairwise,
        )
        bound = claim10_set_size_bound(effective_n, t)
        in_regime = harvest.steps >= 1
        result.points.append(
            Claim10Point(
                t=t,
                set_size=harvest.size,
                effective_n=effective_n,
                closed_form_bound=bound,
                in_regime=in_regime,
                bound_holds=(not in_regime) or harvest.size >= bound,
                pairwise_verified=harvest.verified,
                global_success_ceiling_at_p01=claim10_global_success_bound(
                    0.1, effective_n, t
                ),
            )
        )
    return result
