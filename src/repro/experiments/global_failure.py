"""Local failure -> global failure: Claim 10's amplification, measured.

Theorem 6 says a too-fast weak-2-coloring algorithm succeeds globally
with probability < 1/2.  The mechanism is Claim 10: a constant *local*
failure probability, amplified over ~n^c independent executions, kills
the global success probability as n grows.  This experiment runs fixed
1-round anonymous algorithms on growing toroidal networks (4-regular,
leafless, consistently oriented — the even-degree setting of the
theorem) and measures the global success rate directly, next to the
analytic ceiling ``(1 - p_local)^m`` with ``m`` the number of nodes one
can pack at pairwise distance >= 2t + 1 (for a torus: a stride-3 grid).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..graphs.generators import toroidal_grid
from ..graphs.orientation import orient_torus
from ..speedup.algorithms import NodeAlgorithm, local_maximum_coloring
from ..speedup.failure import node_local_failure
from ..speedup.finite_runner import estimate_global_success

__all__ = ["GlobalFailurePoint", "GlobalFailureResult", "run_global_failure"]


@dataclass
class GlobalFailurePoint:
    """One torus size."""

    rows: int
    cols: int
    n: int
    measured_success: float
    independent_executions: int
    analytic_ceiling: float


@dataclass
class GlobalFailureResult:
    """The sweep for one algorithm."""

    algorithm: str
    local_failure: float
    trials: int
    points: List[GlobalFailurePoint] = field(default_factory=list)

    def success_decays(self) -> bool:
        """Whether measured success is non-increasing in n (with slack)."""
        rates = [p.measured_success for p in self.points]
        return all(b <= a + 0.1 for a, b in zip(rates, rates[1:]))

    def format_table(self) -> str:
        lines = [
            f"algorithm {self.algorithm}: local failure p = {self.local_failure:.4f}, "
            f"{self.trials} trials per size"
        ]
        lines.append(f"{'torus':>10s} {'n':>6s} {'success':>9s} {'ceiling':>9s}")
        for p in self.points:
            lines.append(
                f"{p.rows:>4d} x {p.cols:<4d} {p.n:>6d} {p.measured_success:>9.3f} "
                f"{p.analytic_ceiling:>9.3f}"
            )
        return "\n".join(lines)


def run_global_failure(
    algorithm: Optional[NodeAlgorithm] = None,
    sizes: Sequence[int] = (3, 6, 9, 12),
    trials: int = 200,
    rng_seed: int = 0,
) -> GlobalFailureResult:
    """Measure global success on square tori of the given side lengths.

    The default algorithm is the 2-bit local-maximum seed (radius 1 —
    the largest radius a torus supports soundly).  The analytic ceiling
    uses the exact local failure probability and a stride-3 packing of
    independent executions: ``m = floor(rows/3) * floor(cols/3)``.
    """
    algorithm = algorithm or local_maximum_coloring(2, bits=2)
    if algorithm.t > 1:
        raise ValueError("tori are locally tree-like only up to radius 1")
    p_local = node_local_failure(algorithm, method="exact").as_float()
    rng = random.Random(rng_seed)
    result = GlobalFailureResult(
        algorithm=algorithm.name, local_failure=p_local, trials=trials
    )
    for side in sizes:
        graph = toroidal_grid(side, side)
        orientation = orient_torus(graph, side, side)
        measured = estimate_global_success(
            algorithm, graph, orientation, trials=trials,
            rng=random.Random(rng.getrandbits(64)),
        )
        m = (side // 3) * (side // 3)
        result.points.append(
            GlobalFailurePoint(
                rows=side,
                cols=side,
                n=graph.n,
                measured_success=measured,
                independent_executions=m,
                analytic_ceiling=(1 - p_local) ** m,
            )
        )
    return result
