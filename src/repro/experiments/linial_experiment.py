"""Linial's neighborhood-graph world, measured exactly.

Three exhibits around the equivalence "t-round c-coloring of directed
cycles with identifier space m  <=>  chi(N_t(m)) <= c":

1. **Zero rounds are hopeless**: ``N_0(m) = K_m``, so chi = m exactly —
   a 0-round algorithm needs the whole identifier space as its palette.
2. **One round collapses the palette**: exact chromatic numbers of
   ``N_1(m)`` for small m, including the sharp threshold — ``N_1(6)``
   is 3-colorable but ``N_1(7)`` is **not** (a machine-checked
   impossibility: no 1-round algorithm 3-colors directed cycles with
   identifiers from {1..7}).
3. **Colorings are algorithms**: any proper coloring of ``N_t(m)``
   converts into a runnable cycle algorithm, validated on random
   identifier assignments — the equivalence, executed in both
   directions.

This is the "first flavor" of speedup argument the paper's introduction
contrasts with its own (Section 1: Linial [17], Naor [18]).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..graphs.generators import cycle
from ..lcl.catalog import ProperColoring
from ..lowerbounds.linial import (
    algorithm_from_coloring,
    chromatic_number,
    is_c_colorable,
    linial_chromatic_lower_bound,
    neighborhood_graph,
)

__all__ = ["LinialPoint", "LinialResult", "run_linial_experiment"]


@dataclass
class LinialPoint:
    """One (m, t) cell of the neighborhood-graph table."""

    m: int
    t: int
    vertices: int
    three_colorable: Optional[bool]
    chi: Optional[int]  # exact, when computed
    linial_bound: float


@dataclass
class LinialResult:
    """The table plus the equivalence validation."""

    points: List[LinialPoint] = field(default_factory=list)
    derived_algorithm_valid: bool = False
    threshold_m: Optional[int] = None  # least m with N_1(m) not 3-colorable

    def format_table(self) -> str:
        lines = [f"{'m':>3s} {'t':>2s} {'|N_t|':>6s} {'3-colorable':>12s} "
                 f"{'chi':>4s} {'log^(2t) m':>11s}"]
        for p in self.points:
            three = "-" if p.three_colorable is None else str(p.three_colorable)
            chi = "-" if p.chi is None else str(p.chi)
            lines.append(
                f"{p.m:>3d} {p.t:>2d} {p.vertices:>6d} {three:>12s} "
                f"{chi:>4s} {p.linial_bound:>11.2f}"
            )
        if self.threshold_m is not None:
            lines.append(
                f"threshold: N_1({self.threshold_m}) is NOT 3-colorable — no "
                f"1-round 3-coloring with identifier space {self.threshold_m}"
            )
        return "\n".join(lines)


def run_linial_experiment(
    zero_round_ms: Sequence[int] = (3, 4, 5, 6),
    one_round_chi_ms: Sequence[int] = (4, 5, 6),
    check_threshold: bool = True,
    rng_seed: int = 0,
) -> LinialResult:
    """Build the table, find the 1-round threshold, validate the bridge.

    ``check_threshold`` runs the (exact, ~15 s) unsatisfiability proof
    that ``N_1(7)`` has no proper 3-coloring.
    """
    result = LinialResult()

    # Exhibit 1: chi(N_0(m)) = m.
    for m in zero_round_ms:
        graph, _ = neighborhood_graph(m, 0)
        result.points.append(
            LinialPoint(
                m=m,
                t=0,
                vertices=graph.n,
                three_colorable=m <= 3,
                chi=chromatic_number(graph),
                linial_bound=linial_chromatic_lower_bound(m, 0),
            )
        )

    # Exhibit 2: exact chi of N_1(m) for small m; threshold at 7.
    for m in one_round_chi_ms:
        graph, _ = neighborhood_graph(m, 1)
        result.points.append(
            LinialPoint(
                m=m,
                t=1,
                vertices=graph.n,
                three_colorable=is_c_colorable(graph, 3) is not None,
                chi=chromatic_number(graph),
                linial_bound=linial_chromatic_lower_bound(m, 1),
            )
        )
    if check_threshold:
        graph7, _ = neighborhood_graph(7, 1)
        colorable = is_c_colorable(graph7, 3) is not None
        result.points.append(
            LinialPoint(
                m=7,
                t=1,
                vertices=graph7.n,
                three_colorable=colorable,
                chi=None,
                linial_bound=linial_chromatic_lower_bound(7, 1),
            )
        )
        if not colorable:
            result.threshold_m = 7

    # Exhibit 3: a proper coloring of N_1(6) is a runnable algorithm.
    graph6, windows6 = neighborhood_graph(6, 1)
    coloring = is_c_colorable(graph6, 3)
    algorithm = algorithm_from_coloring(coloring, windows6, m=6, t=1)
    rng = random.Random(rng_seed)
    valid = True
    for _ in range(20):
        n = rng.randrange(4, 7)
        ids = rng.sample(range(1, 7), n)
        ring = cycle(n) if n >= 3 else None
        if ring is None:
            continue
        out = algorithm.run(ids)
        valid &= ProperColoring(3).is_feasible(ring, out)
    result.derived_algorithm_valid = valid
    return result
