"""Order-invariant algorithms — the Naor-Stockmeyer / Ramsey angle.

The classical route to lower bounds below log* (discussed in the
paper's introduction) converts any fast algorithm into an
*order-invariant* one: an algorithm whose output depends only on the
relative order of the identifiers in its view, not their values.  This
module makes the notion executable:

* :func:`order_projected_view` — replace a view's identifiers by their
  ranks (the canonical order type);
* :class:`OrderInvariantProjection` — wrap any view algorithm so it
  sees only the order type (forcing order-invariance);
* :func:`is_order_invariant` — empirical check: rerun a view algorithm
  under random order-preserving re-labelings and compare outputs;
* :func:`order_homogeneous_failure` — the argument's punchline on
  cycles: under increasing identifiers, interior nodes of a long cycle
  have identical order types, so *any* order-invariant algorithm gives
  them equal outputs and cannot weakly 2-color — executable Theorem 21
  fuel (and exactly why the in-degree shortcut dies in
  :mod:`repro.algorithms.naor_stockmeyer`).
"""

from __future__ import annotations

import random
from typing import Any, Callable, List, Optional, Sequence

from ..graphs.graph import Graph
from .algorithm import ViewAlgorithm
from .views import View, gather_view

__all__ = [
    "order_projected_view",
    "OrderInvariantProjection",
    "is_order_invariant",
    "order_homogeneous_failure",
]


def order_projected_view(view: View) -> View:
    """The view with identifiers replaced by their ranks (order type)."""
    if view.identifiers is None:
        return view
    order = sorted(range(view.node_count), key=lambda i: view.identifiers[i])
    rank = [0] * view.node_count
    for position, i in enumerate(order):
        rank[i] = position + 1
    return View(
        radius=view.radius,
        center=view.center,
        distances=view.distances,
        degrees=view.degrees,
        identifiers=rank,
        inputs=view.inputs,
        randomness=view.randomness,
        edges=view.edges,
        originals=view.originals,
    )


class OrderInvariantProjection(ViewAlgorithm):
    """Force order-invariance: the wrapped algorithm sees only ranks."""

    def __init__(self, inner: ViewAlgorithm):
        self.inner = inner
        self.radius = inner.radius
        self.name = f"order-invariant[{inner.name}]"

    def output(self, view: View) -> Any:
        return self.inner.output(order_projected_view(view))


def _order_preserving_relabeling(
    ids: Sequence[int], space: int, rng: random.Random
) -> List[int]:
    """Fresh identifiers with the same relative order, drawn from 1..space."""
    n = len(ids)
    fresh = sorted(rng.sample(range(1, space + 1), n))
    by_rank = sorted(range(n), key=lambda v: ids[v])
    out = [0] * n
    for rank, v in enumerate(by_rank):
        out[v] = fresh[rank]
    return out


def is_order_invariant(
    algorithm: ViewAlgorithm,
    graph: Graph,
    ids: Sequence[int],
    trials: int = 8,
    rng: Optional[random.Random] = None,
) -> bool:
    """Empirically test order-invariance on one instance.

    Reruns the algorithm under ``trials`` random order-preserving
    identifier re-labelings; returns False on the first output change.
    (A True result is evidence, not proof — exactly the direction the
    Ramsey argument needs is that *projections* are invariant, which
    :class:`OrderInvariantProjection` guarantees by construction.)
    """
    rng = rng or random.Random(0)
    space = max(max(ids) * 4, len(ids) * 4)
    baseline = [
        algorithm.output(gather_view(graph, v, algorithm.radius, ids=ids))
        for v in graph.nodes()
    ]
    for _ in range(trials):
        relabeled = _order_preserving_relabeling(ids, space, rng)
        outputs = [
            algorithm.output(gather_view(graph, v, algorithm.radius, ids=relabeled))
            for v in graph.nodes()
        ]
        if outputs != baseline:
            return False
    return True


def order_homogeneous_failure(
    algorithm: ViewAlgorithm, cycle_length: int
) -> List[int]:
    """Interior nodes of an increasing-identifier cycle that fail weakly.

    Runs the (assumed order-invariant) algorithm on a cycle labeled with
    increasing identifiers and returns the nodes whose whole closed
    neighborhood received one output — nonempty for *every*
    order-invariant algorithm once the cycle is long enough, because
    interior views are pairwise order-isomorphic.
    """
    from ..graphs.generators import cycle as make_cycle

    graph = make_cycle(cycle_length)
    ids = [v + 1 for v in graph.nodes()]
    outputs = [
        algorithm.output(gather_view(graph, v, algorithm.radius, ids=ids))
        for v in graph.nodes()
    ]
    failing = []
    for v in graph.nodes():
        neighborhood = [outputs[u] for u in graph.neighbors(v)]
        if all(out == outputs[v] for out in neighborhood):
            failing.append(v)
    return failing
