"""Batched ball expansion over the compiled CSR layout.

The memoizing engines spend almost all their time computing canonical
ball keys: :func:`~repro.local_model.views.view_signature` walks every
radius-r ball node by node in Python.  This module computes the *same
partition into view-equivalence classes* for **all** n balls in one
vectorized pass over :class:`~repro.graphs.csr.CSRGraph` arrays:

1.  A block-batched, layer-synchronous multi-source BFS discovers every
    ball member in canonical (port-order) exploration order, for a
    block of sources at once, using one reusable ``(block, n)`` local-
    index matrix as the visited/rank structure.  The layer loop *is*
    the incremental radius-(r-1) -> r extension: one BFS to the largest
    requested radius yields every smaller radius by masking local
    ranks against the per-layer ball sizes (see
    :meth:`BatchBallExpander.node_classes_many`).
2.  Each ball is packed into a flat integer *stream* —
    ``[k, degrees..., port rows..., label sections...]`` trimmed to its
    true length — whose bytes form are a **perfect canonical key**: the
    stream is self-delimiting (its length is a function of its own
    prefix), so two balls have equal stream bytes iff their reference
    signatures are equal.  This is the cheaper rolling replacement for
    ``view_signature`` on the hot path; the differential suite
    (``tests/test_csr_parity.py``) proves the bit-identity.

Inputs the vectorized path cannot represent exactly — an
:class:`~repro.graphs.orientation.Orientation`, or labels that are not
64-bit integers — fall back to the reference signatures per entity
(``path == "python"``), so the expander never guesses: every partition
it returns is exact by construction.

The engines reach this module through the *layout* knob on
:class:`~repro.core.engine.SimRequest` (``"auto"`` / ``"dict"`` /
``"csr"``); :func:`register_layout` lets tests plug in deliberately
broken expanders so the conformance fuzzer can prove it catches layout
divergence (see :mod:`repro.conformance.fixtures`).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..graphs.graph import Graph
from .views import (
    _collect,
    _explore,
    edge_view_signature,
    view_signature,
)

__all__ = [
    "ClassPartition",
    "ClassCounts",
    "BatchBallExpander",
    "ImplicitBallExpander",
    "register_layout",
    "known_layouts",
    "expander_for",
    "resolve_layout",
    "gather_view_csr",
    "gather_edge_view_csr",
]

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1


class ClassPartition:
    """All entities of one run, partitioned into view-equivalence classes.

    Attributes
    ----------
    keys:
        One hashable canonical key per class, in first-occurrence order.
        On the vectorized path these are ``(tag, radius, flags, bytes)``
        tuples; on the fallback path they are the reference signature
        tuples.  Either way the key is perfect: equal keys iff equal
        reference signatures (within one path — the two key spaces are
        disjoint by construction, so mixing them in one cache is safe,
        merely un-shared).
    labels:
        ``labels[i]`` is the class index of entity ``i`` (node ``i`` for
        node partitions, the ``i``-th edge for edge partitions).
    reps:
        ``reps[c]`` is the first entity of class ``c`` — the same
        representative the reference per-entity scan would pick.
    path:
        ``"numpy"`` (vectorized) or ``"python"`` (reference fallback).
    """

    __slots__ = ("keys", "labels", "reps", "path")

    def __init__(
        self,
        keys: List[Any],
        labels: List[int],
        reps: List[int],
        path: str,
    ):
        self.keys = keys
        self.labels = labels
        self.reps = reps
        self.path = path

    @property
    def class_count(self) -> int:
        """Number of distinct view-equivalence classes in the partition."""
        return len(self.keys)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ClassPartition(entities={len(self.labels)}, "
            f"classes={len(self.keys)}, path={self.path!r})"
        )


class ClassCounts:
    """Exact view-class multiplicities of an implicit family's node set.

    The O(distinct classes) companion of :class:`ClassPartition`: where a
    partition carries one label per *node* (inherently O(n)), this
    carries one ``(key, rep, count)`` triple per *class* — computed from
    a closed-form strata decomposition without ever touching all n
    nodes.  ``keys`` and ``reps`` match the materialized full scan's
    first-occurrence order and representatives exactly (the strata
    contract guarantees it; the parity suite proves it at overlap n),
    and ``counts`` sum to ``n``.

    Attributes
    ----------
    keys:
        One hashable canonical key per class, in first-occurrence order
        — the same key space as the vectorized :class:`ClassPartition`
        keys, so memoized results are shareable.
    reps:
        ``reps[c]`` is the smallest node of class ``c`` (the identical
        representative the materialized scan would pick).
    counts:
        ``counts[c]`` is the exact number of nodes in class ``c``.
    path:
        ``"numpy"`` (the window-synthesized vectorized path).
    """

    __slots__ = ("keys", "reps", "counts", "path")

    def __init__(
        self,
        keys: List[Any],
        reps: List[int],
        counts: List[int],
        path: str,
    ):
        self.keys = keys
        self.reps = reps
        self.counts = counts
        self.path = path

    @property
    def class_count(self) -> int:
        """Number of distinct view-equivalence classes."""
        return len(self.keys)

    @property
    def total(self) -> int:
        """Total multiplicity (equals the family's node count ``n``)."""
        return sum(self.counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ClassCounts(classes={len(self.keys)}, "
            f"total={self.total}, path={self.path!r})"
        )


def _int64_column(
    values: Optional[Sequence[Any]], n: int
) -> Optional[np.ndarray]:
    """``values`` as an exact ``int64[n]`` array, or ``None`` if any
    entry is not a (bounded) integer.  Bools are integers here exactly
    as they are for the reference signature tuples (``True == 1``)."""
    if values is None or len(values) != n:
        return None
    for x in values:
        if not isinstance(x, (bool, int, np.integer)):
            return None
        if not _INT64_MIN <= int(x) <= _INT64_MAX:
            return None
    return np.asarray([int(x) for x in values], dtype=np.int64)


def _exclusive_cumsum(a: np.ndarray) -> np.ndarray:
    out = np.empty(a.size, dtype=np.int64)
    if a.size:
        out[0] = 0
        np.cumsum(a[:-1], out=out[1:])
    return out


class BatchBallExpander:
    """Compute ball-class partitions for every node (or edge) at once.

    One expander per graph; the engines cache it on the graph's
    :class:`~repro.graphs.csr.CSRGraph` so its block buffers are reused
    across runs.  Subclass and override :meth:`_class_key` to build a
    *broken* layout for fuzzer self-tests.
    """

    #: Target bytes for the (block, n) local-index matrix.  Measured on
    #: the n≈4-5k benchmark trees: 16 MiB leaves too many per-block
    #: fixed costs, 48 MiB starts thrashing cache on Δ=6 — 32 MiB is
    #: the plateau for both.
    _BLOCK_BYTES = 32 << 20

    def __init__(self, graph: Graph):
        self.graph = graph
        self.csr = graph.csr()
        n = max(1, self.csr.n)
        self.block = max(64, min(4096, self._BLOCK_BYTES // (4 * n)))
        self._local: Optional[np.ndarray] = None

    # -- public API -----------------------------------------------------
    def node_classes(
        self,
        radius: int,
        ids: Optional[Sequence[Any]] = None,
        inputs: Optional[Sequence[Any]] = None,
        randomness: Optional[Sequence[Any]] = None,
        orientation: Optional[Any] = None,
        sources: Optional[Sequence[int]] = None,
    ) -> ClassPartition:
        """Partition nodes by ``view_signature`` equality.

        With ``sources=None`` every node is partitioned; otherwise only
        the listed nodes are (``labels[i]`` / ``reps[c]`` then index the
        ``sources`` sequence).  Subset keys live in the same key space
        as full-run keys — the packed stream of a ball does not depend
        on which other balls share the pass — which is what lets the
        incremental engine reuse a full run's memo for its dirty subset.
        """
        return self.node_classes_many(
            (radius,), ids, inputs, randomness, orientation, sources=sources
        )[0]

    def node_classes_many(
        self,
        radii: Sequence[int],
        ids: Optional[Sequence[Any]] = None,
        inputs: Optional[Sequence[Any]] = None,
        randomness: Optional[Sequence[Any]] = None,
        orientation: Optional[Any] = None,
        sources: Optional[Sequence[int]] = None,
    ) -> List[ClassPartition]:
        """Partitions for several radii from ONE shared BFS pass.

        The layer-synchronous expansion runs once to ``max(radii)``;
        each smaller radius is derived incrementally by masking local
        ranks against that radius's per-source ball size (ranks are
        assigned in layer order, so membership in the radius-r ball is
        exactly ``rank < |B_r(v)|``).

        ``sources`` restricts the partition to a node subset (see
        :meth:`node_classes`); cost is then proportional to the subset's
        ball volume, not n — the incremental engine's dirty-only pass.
        """
        n = self.csr.n
        cols, ok = self._label_columns(n, ids, inputs, randomness)
        entities: Sequence[int] = range(n) if sources is None else list(sources)
        if orientation is not None or not ok or n == 0:
            return [
                self._fallback(
                    "node", entities, r, ids, inputs, randomness, orientation
                )
                for r in radii
            ]
        if sources is None:
            seeds = [np.arange(n, dtype=np.int64)]
        else:
            seeds = [np.asarray(entities, dtype=np.int64)]
            if seeds[0].size == 0:
                return [
                    ClassPartition([], [], [], path="numpy") for _ in radii
                ]
        flags = (ids is not None, inputs is not None, randomness is not None)
        return self._partition_numpy(seeds, tuple(radii), cols, "v", flags)

    def edge_classes(
        self,
        edges: Sequence[Tuple[int, int]],
        radius: int,
        ids: Optional[Sequence[Any]] = None,
        inputs: Optional[Sequence[Any]] = None,
        randomness: Optional[Sequence[Any]] = None,
        orientation: Optional[Any] = None,
    ) -> ClassPartition:
        """Partition ``edges`` by ``edge_view_signature`` equality.

        ``edges`` must be the run's entity order (the engines pass
        ``graph.edges()`` order).  Oriented runs take the fallback path,
        which applies the reference endpoint swap itself.
        """
        n = self.csr.n
        cols, ok = self._label_columns(n, ids, inputs, randomness)
        if orientation is not None or not ok or n == 0 or not edges:
            return self._fallback(
                "edge", edges, radius, ids, inputs, randomness, orientation
            )
        us = np.asarray([e[0] for e in edges], dtype=np.int64)
        vs = np.asarray([e[1] for e in edges], dtype=np.int64)
        flags = (ids is not None, inputs is not None, randomness is not None)
        return self._partition_numpy([us, vs], (radius,), cols, "e", flags)[0]

    # -- stream element width -------------------------------------------
    def _stream_dtype(self, cols: List[np.ndarray]) -> np.dtype:
        """Packed-stream element type for the given label columns.

        Streams hold ball sizes, degrees, local ranks (< n), and label
        values: when every label fits in 32 bits the packed buffer can
        be int32, halving the memory traffic of the pack + block-dedup
        memcmp sort.  The element width is part of the class key, so
        the two stream encodings occupy disjoint key spaces.

        Factored out so the implicit window path can *force* the dtype
        computed from the full n-length columns while packing only the
        window-mapped slices — the reference full scan derives the
        width from the full columns, and bit-identity requires matching
        it even when the window happens to contain only small values.
        """
        for col in cols:
            if col.size and (
                int(col.min()) < -(2**31) or int(col.max()) > 2**31 - 1
            ):
                return np.dtype(np.int64)
        return np.dtype(np.int32)

    # -- key derivation (override point for broken-layout fixtures) -----
    def _class_key(
        self, tag: str, radius: int, flags: Tuple[bool, ...], stream: bytes
    ) -> Any:
        return (tag, radius, flags, stream)

    # -- reference fallback ---------------------------------------------
    def _fallback(
        self,
        kind: str,
        entities: Sequence[Any],
        radius: int,
        ids: Optional[Sequence[Any]],
        inputs: Optional[Sequence[Any]],
        randomness: Optional[Sequence[Any]],
        orientation: Optional[Any],
    ) -> ClassPartition:
        classes: Dict[Any, int] = {}
        keys: List[Any] = []
        labels: List[int] = []
        reps: List[int] = []
        for i, entity in enumerate(entities):
            if kind == "node":
                sig = view_signature(
                    self.graph, entity, radius,
                    ids=ids, inputs=inputs, randomness=randomness,
                    orientation=orientation,
                )
            else:
                sig = edge_view_signature(
                    self.graph, entity, radius,
                    ids=ids, inputs=inputs, randomness=randomness,
                    orientation=orientation,
                )
            c = classes.get(sig)
            if c is None:
                c = classes[sig] = len(keys)
                keys.append(sig)
                reps.append(i)
            labels.append(c)
        return ClassPartition(keys, labels, reps, path="python")

    # -- vectorized core ------------------------------------------------
    def _label_columns(
        self,
        n: int,
        ids: Optional[Sequence[Any]],
        inputs: Optional[Sequence[Any]],
        randomness: Optional[Sequence[Any]],
    ) -> Tuple[List[np.ndarray], bool]:
        cols: List[np.ndarray] = []
        for values in (ids, inputs, randomness):
            if values is None:
                continue
            col = _int64_column(values, n)
            if col is None:
                return [], False
            cols.append(col)
        return cols, True

    def _local_matrix(self, n: int, rows: int) -> np.ndarray:
        # Sized to the actual source count, not the block ceiling: a
        # subset pass (the incremental engine's dirty footprint) must
        # not pay a block x n allocation for a handful of sources.
        # Grow-on-demand keeps one buffer serving mixed call sizes.
        if self._local is None or self._local.shape[0] < rows:
            self._local = np.full((rows, n), -1, dtype=np.int32)
        return self._local

    def _partition_numpy(
        self,
        seed_cols: List[np.ndarray],
        radii: Tuple[int, ...],
        cols: List[np.ndarray],
        tag: str,
        flags: Tuple[bool, ...],
    ) -> List[ClassPartition]:
        csr = self.csr
        n = csr.n
        indptr, indices, degrees = csr.indptr, csr.indices, csr.degrees
        big_radius = max(radii)
        s = len(seed_cols)
        total_sources = seed_cols[0].size
        local = self._local_matrix(n, max(1, min(self.block, total_sources)))

        stream_dtype = self._stream_dtype(cols)

        classes: List[Dict[Any, int]] = [{} for _ in radii]
        keys: List[List[Any]] = [[] for _ in radii]
        labels: List[List[int]] = [[] for _ in radii]
        reps: List[List[int]] = [[] for _ in radii]

        for b0 in range(0, total_sources, self.block):
            b1 = min(b0 + self.block, total_sources)
            B = b1 - b0

            # --- layer-synchronous multi-source BFS over the block ----
            seed_mat = np.stack([c[b0:b1] for c in seed_cols], axis=1)
            d_src = np.repeat(np.arange(B, dtype=np.int64), s)
            d_node = seed_mat.ravel()
            local[d_src, d_node] = np.tile(np.arange(s, dtype=np.int32), B)
            cnt = np.full(B, s, dtype=np.int64)
            disc_src, disc_node = [d_src], [d_node]
            cnt_at = [cnt.copy()]  # cnt_at[r] = |B_r(source)| per source
            f_src, f_node = d_src, d_node
            for _ in range(big_radius):
                if f_src.size == 0:
                    cnt_at.append(cnt.copy())
                    continue
                df = degrees[f_node]
                total = int(df.sum())
                if total == 0:
                    f_src = f_src[:0]
                    cnt_at.append(cnt.copy())
                    continue
                arc = np.repeat(
                    indptr[f_node] - _exclusive_cumsum(df), df
                ) + np.arange(total, dtype=np.int64)
                e_src = np.repeat(f_src, df)
                e_nbr = indices[arc]
                fresh = local[e_src, e_nbr] < 0
                e_src, e_nbr = e_src[fresh], e_nbr[fresh]
                if e_src.size == 0:
                    f_src = e_src
                    cnt_at.append(cnt.copy())
                    continue
                # First arc wins, in generation (= port-BFS) order: dedup
                # by sorted (src, nbr) key, then restore generation order.
                first = np.unique(e_src * n + e_nbr, return_index=True)[1]
                first.sort()
                f_src, f_node = e_src[first], e_nbr[first]
                counts = np.bincount(f_src, minlength=B)
                rank = np.arange(f_src.size, dtype=np.int64) - (
                    _exclusive_cumsum(counts)[f_src]
                )
                local[f_src, f_node] = (cnt[f_src] + rank).astype(np.int32)
                cnt = cnt + counts
                disc_src.append(f_src)
                disc_node.append(f_node)
                cnt_at.append(cnt.copy())

            a_src = np.concatenate(disc_src)
            a_node = np.concatenate(disc_node)
            a_loc = local[a_src, a_node].astype(np.int64)

            # --- pack streams + bucket keys, one pass per radius ------
            for ri, radius in enumerate(radii):
                self._bucket_block(
                    tag, flags, radius, cnt_at[radius],
                    a_src, a_node, a_loc, cols, b0, stream_dtype,
                    classes[ri], keys[ri], labels[ri], reps[ri],
                )

            # Reset the touched entries so the matrix is clean for the
            # next block (full clears would dominate on sparse balls).
            local[a_src, a_node] = -1

        return [
            ClassPartition(keys[ri], labels[ri], reps[ri], path="numpy")
            for ri in range(len(radii))
        ]

    def _bucket_block(
        self,
        tag: str,
        flags: Tuple[bool, ...],
        radius: int,
        k_r: np.ndarray,
        a_src: np.ndarray,
        a_node: np.ndarray,
        a_loc: np.ndarray,
        cols: List[np.ndarray],
        entity_base: int,
        stream_dtype: np.dtype,
        classes: Dict[Any, int],
        keys: List[Any],
        labels: List[int],
        reps: List[int],
    ) -> None:
        csr = self.csr
        indptr, indices, degrees = csr.indptr, csr.indices, csr.degrees
        B = k_r.size
        # Ranks are assigned in layer order, so the radius-r ball is
        # exactly the entries with rank < |B_r(source)|.
        sel = a_loc < k_r[a_src]
        s_src, s_node, s_loc = a_src[sel], a_node[sel], a_loc[sel]
        d_a = degrees[s_node]
        rowlen = np.bincount(
            s_src, weights=d_a, minlength=B
        ).astype(np.int64)
        n_cols = len(cols)
        stream_len = 1 + k_r + rowlen + n_cols * k_r
        width = int(stream_len.max())
        # Zero-filled so the padding past each stream's true length is
        # deterministic: the stream is self-delimiting (its length is a
        # function of its own prefix), so two zero-padded fixed-width
        # rows are equal iff the trimmed streams are — which lets the
        # block dedup below compare whole rows without trimming.
        buf = np.zeros(B * width, dtype=stream_dtype)
        base = np.arange(B, dtype=np.int64) * width
        # Header: ball size (makes the stream self-delimiting).
        buf[base] = k_r
        # Degree section: row lengths in exploration order.
        buf[base[s_src] + 1 + s_loc] = d_a
        # Port-row section: each ball node's neighbors as local ranks
        # (-1 outside the ball), exactly the reference signature rows.
        max_k = int(k_r.max()) if B else 0
        degmat = np.zeros((B, max_k), dtype=np.int64)
        degmat[s_src, s_loc] = d_a
        rowstart = np.cumsum(degmat, axis=1) - degmat
        entry_start = base[s_src] + 1 + k_r[s_src] + rowstart[s_src, s_loc]
        total = int(d_a.sum())
        cum = _exclusive_cumsum(d_a)
        arc = np.repeat(indptr[s_node] - cum, d_a) + np.arange(
            total, dtype=np.int64
        )
        r_src = np.repeat(s_src, d_a)
        vals = self._local[r_src, indices[arc]].astype(np.int64)
        vals = np.where(vals < k_r[r_src], vals, -1)
        pos = np.repeat(entry_start, d_a) + (
            np.arange(total, dtype=np.int64) - np.repeat(cum, d_a)
        )
        buf[pos] = vals
        # Label sections, one per present labeling, in exploration order.
        off = base[s_src] + 1 + k_r[s_src] + rowlen[s_src] + s_loc
        for ci, col in enumerate(cols):
            buf[off + ci * k_r[s_src]] = col[s_node]

        # Dedup inside the block first (C-speed memcmp sort over whole
        # rows), so only one row per block-local class reaches the
        # Python-level key dict — on the regular trees this is ~40 dict
        # probes per block instead of ~4000.
        mat = buf.reshape(B, width)
        rows = mat.view(np.dtype((np.void, width * buf.itemsize))).ravel()
        _, first, inverse = np.unique(
            rows, return_index=True, return_inverse=True
        )
        local_class = np.empty(first.size, dtype=np.int64)
        # The stream's element width joins the flags so int32- and
        # int64-packed streams can never alias in a shared cache.
        key_flags = flags + (buf.itemsize,)
        # Visit block-local classes by first occurrence, preserving the
        # global first-occurrence class numbering of the reference scan.
        for rank in np.argsort(first, kind="stable"):
            i = int(first[rank])
            key = self._class_key(
                tag, radius, key_flags,
                mat[i, : int(stream_len[i])].tobytes(),
            )
            c = classes.get(key)
            if c is None:
                c = classes[key] = len(keys)
                keys.append(key)
                reps.append(entity_base + i)
            local_class[rank] = c
        labels.extend(local_class[inverse.ravel()].tolist())


class _WindowExpander(BatchBallExpander):
    """Internal expander over a synthesized window CSR.

    Constructed fresh per implicit pass (window widths vary call to
    call, so the reusable local matrix cannot be shared), it reuses the
    entire vectorized core of :class:`BatchBallExpander` unchanged —
    which is what makes the window path byte-identical by construction.
    Two deliberate deviations: the packed-stream dtype can be *forced*
    to the full-column width (see
    :meth:`BatchBallExpander._stream_dtype`), and class keys delegate
    to the owning :class:`ImplicitBallExpander` so subclassed key
    schemes (conformance fixtures) survive the window indirection.
    """

    def __init__(
        self,
        csr: Any,
        owner: "ImplicitBallExpander",
        stream_dtype: Optional[np.dtype] = None,
    ):
        self.graph = owner.graph
        self.csr = csr
        n = max(1, csr.n)
        self.block = max(64, min(4096, self._BLOCK_BYTES // (4 * n)))
        self._local: Optional[np.ndarray] = None
        self._owner = owner
        self._forced_dtype = stream_dtype

    def _stream_dtype(self, cols: List[np.ndarray]) -> np.dtype:
        """The owner-forced width, or the inherited rule when unforced."""
        if self._forced_dtype is not None:
            return self._forced_dtype
        return super()._stream_dtype(cols)

    def _class_key(
        self, tag: str, radius: int, flags: Tuple[bool, ...], stream: bytes
    ) -> Any:
        """Delegate to the owning implicit expander's key scheme."""
        return self._owner._class_key(tag, radius, flags, stream)


class ImplicitBallExpander(BatchBallExpander):
    """Ball-class machinery for implicit (closed-form) graph families.

    Serves :class:`~repro.graphs.implicit.ImplicitGraph` handles through
    the same interface as :class:`BatchBallExpander`, plus the
    O(distinct classes) entry point the n >= 10^6 experiments run on:

    * :meth:`node_classes` / :meth:`edge_classes` with explicit
      ``sources`` / ``edges`` synthesize a CSR *window* around the
      requested balls (:meth:`CSRGraph.synthesize_window
      <repro.graphs.csr.CSRGraph.synthesize_window>`) and run the
      inherited vectorized core over it — cost O(window volume),
      independent of n, streams byte-identical to the materialized
      full-graph pass (the window contains every row a ball stream
      reads; the packed dtype is forced to the full-column width).
    * With no ``sources`` the full partition is inherently O(n), so the
      pass runs over the guarded full synthesized CSR —
      bit-for-bit the materialized ``"csr"`` layout at overlap n, and
      :class:`~repro.graphs.implicit.ImplicitMaterializeError` beyond
      the limit (materialization must never sneak back in silently).
    * :meth:`class_counts` / :meth:`class_counts_many` expand one ball
      per closed-form *stratum* and multiply by stratum sizes: exact
      class multiplicities, first-occurrence key/rep order identical to
      the materialized scan, O(1) distinct classes on cycles/paths/tori
      and O(depth) on balanced trees.

    Orientation or non-int64 labelings take the inherited per-entity
    reference fallback on the duck-typed handle (exact, O(entities)).
    """

    def __init__(self, graph: Any):
        if not getattr(graph, "is_implicit", False):
            raise ValueError(
                "ImplicitBallExpander requires an ImplicitGraph handle"
            )
        self.graph = graph
        self.csr = None  # windows are synthesized per pass
        self.block = 0
        self._local: Optional[np.ndarray] = None
        self._full_inner: Optional[_WindowExpander] = None

    # -- partition API (ClassPartition-compatible) ----------------------
    def node_classes_many(
        self,
        radii: Sequence[int],
        ids: Optional[Sequence[Any]] = None,
        inputs: Optional[Sequence[Any]] = None,
        randomness: Optional[Sequence[Any]] = None,
        orientation: Optional[Any] = None,
        sources: Optional[Sequence[int]] = None,
    ) -> List[ClassPartition]:
        """Node partitions from closed-form windows (one shared BFS).

        Same contract as :meth:`BatchBallExpander.node_classes_many`;
        with ``sources`` the cost is O(ball volume) regardless of n,
        without them the (O(n)-output) full pass runs over the guarded
        synthesized CSR.
        """
        graph = self.graph
        n = graph.n
        cols, ok = self._label_columns(n, ids, inputs, randomness)
        entities: Sequence[int] = range(n) if sources is None else list(sources)
        if orientation is not None or not ok or n == 0:
            return [
                self._fallback(
                    "node", entities, r, ids, inputs, randomness, orientation
                )
                for r in radii
            ]
        flags = (ids is not None, inputs is not None, randomness is not None)
        if sources is None:
            inner = self._full_expander()
            return inner._partition_numpy(
                [np.arange(n, dtype=np.int64)], tuple(radii), cols, "v", flags
            )
        seeds = np.asarray(entities, dtype=np.int64)
        if seeds.size == 0:
            return [ClassPartition([], [], [], path="numpy") for _ in radii]
        return self._window_partition([seeds], tuple(radii), cols, "v", flags)

    def edge_classes(
        self,
        edges: Sequence[Tuple[int, int]],
        radius: int,
        ids: Optional[Sequence[Any]] = None,
        inputs: Optional[Sequence[Any]] = None,
        randomness: Optional[Sequence[Any]] = None,
        orientation: Optional[Any] = None,
    ) -> ClassPartition:
        """Edge partition over the window spanned by the endpoints."""
        graph = self.graph
        n = graph.n
        cols, ok = self._label_columns(n, ids, inputs, randomness)
        if orientation is not None or not ok or n == 0 or not edges:
            return self._fallback(
                "edge", edges, radius, ids, inputs, randomness, orientation
            )
        us = np.asarray([e[0] for e in edges], dtype=np.int64)
        vs = np.asarray([e[1] for e in edges], dtype=np.int64)
        flags = (ids is not None, inputs is not None, randomness is not None)
        return self._window_partition([us, vs], (radius,), cols, "e", flags)[0]

    # -- exact multiplicities (the O(classes) experiment path) ----------
    def class_counts(self, radius: int) -> ClassCounts:
        """Exact anonymous class multiplicities at one radius."""
        return self.class_counts_many((radius,))[0]

    def class_counts_many(self, radii: Sequence[int]) -> List[ClassCounts]:
        """Exact anonymous class multiplicities, one BFS for all radii.

        Expands one ball per stratum of ``strata(max(radii))`` (sound
        for every smaller radius: identical deep balls have identical
        shallow balls) and multiplies class membership by stratum
        sizes.  Peak memory is O(window volume) = O(distinct classes *
        ball volume); n only enters through the closed forms.

        Raises
        ------
        RuntimeError
            If the family's strata fail to cover n (a closed-form bug —
            this is a cheap self-check, not a recoverable condition).
        """
        graph = self.graph
        n = graph.n
        radii = tuple(radii)
        if n == 0:
            return [ClassCounts([], [], [], path="numpy") for _ in radii]
        strata = graph.strata(max(radii))
        reps = np.asarray([rep for rep, _ in strata], dtype=np.int64)
        sizes = [cnt for _, cnt in strata]
        parts = self._window_partition(
            [reps], radii, [], "v", (False, False, False)
        )
        out: List[ClassCounts] = []
        for part in parts:
            per_class = [0] * part.class_count
            for i, c in enumerate(part.labels):
                per_class[c] += sizes[i]
            if sum(per_class) != n:
                raise RuntimeError(
                    f"strata of {graph!r} cover {sum(per_class)} of {n} "
                    f"nodes — closed-form strata bug"
                )
            out.append(
                ClassCounts(
                    part.keys,
                    [int(reps[i]) for i in part.reps],
                    per_class,
                    part.path,
                )
            )
        return out

    # -- internals ------------------------------------------------------
    def _full_expander(self) -> _WindowExpander:
        """The (cached) expander over the guarded full synthesized CSR."""
        if self._full_inner is None:
            self._full_inner = _WindowExpander(self.graph.csr(), self)
        return self._full_inner

    def _window_partition(
        self,
        seed_cols: List[np.ndarray],
        radii: Tuple[int, ...],
        cols: List[np.ndarray],
        tag: str,
        flags: Tuple[bool, ...],
    ) -> List[ClassPartition]:
        """Run the vectorized core over a synthesized ball window.

        The window holds exact rows for every node within
        ``max(radii)`` of the seeds plus an id-only boundary ring — the
        exact set of rows / targets the packed streams read — so the
        inherited ``_partition_numpy`` produces byte-identical streams,
        keys, labels, and (seed-indexed) reps to the materialized
        full-CSR pass over the same seeds.
        """
        from ..graphs.csr import CSRGraph

        graph = self.graph
        seen: Dict[int, None] = {}
        for arr in seed_cols:
            for v in arr.tolist():
                seen.setdefault(int(v), None)
        core, boundary = graph.window(list(seen), max(radii))
        win, local_of = CSRGraph.synthesize_window(
            graph.neighbors, core, boundary
        )
        mapped_seeds = [
            np.asarray([local_of[int(v)] for v in arr], dtype=np.int64)
            for arr in seed_cols
        ]
        members = np.asarray(core + boundary, dtype=np.int64)
        mapped_cols = [col[members] for col in cols]
        inner = _WindowExpander(win, self, self._stream_dtype(cols))
        return inner._partition_numpy(
            mapped_seeds, radii, mapped_cols, tag, flags
        )


# ----------------------------------------------------------------------
# Layout registry + resolution (the engines' entry points)
# ----------------------------------------------------------------------

#: The built-in layouts every view/edge request can name.  ``"dict"``
#: is the reference per-entity path, ``"csr"`` the batched expander,
#: and ``"kernel"`` the expander plus a vectorized class-table apply
#: (see :mod:`repro.local_model.kernels` and ``docs/KERNELS.md``).
LAYOUTS = ("dict", "csr", "kernel")

_LAYOUT_FACTORIES: Dict[str, Callable[[Graph], BatchBallExpander]] = {
    "csr": BatchBallExpander,
    "kernel": BatchBallExpander,
    "implicit": ImplicitBallExpander,
}


def register_layout(
    name: str,
    factory: Callable[[Graph], BatchBallExpander],
    replace: bool = False,
) -> None:
    """Register an expander-backed layout under ``name``.

    Exists for the conformance fixtures: a deliberately broken expander
    registered here becomes fuzzable through the ``layouts=`` contract
    axis, proving the fuzzer detects layout divergence.
    """
    if name == "dict":
        raise ValueError('"dict" is the reference layout; cannot replace it')
    if name in _LAYOUT_FACTORIES and not replace:
        raise ValueError(f"layout {name!r} is already registered")
    _LAYOUT_FACTORIES[name] = factory


def known_layouts() -> Tuple[str, ...]:
    """Every resolvable layout name (reference first)."""
    return ("dict",) + tuple(sorted(_LAYOUT_FACTORIES))


def expander_for(graph: Graph, layout: str = "csr") -> BatchBallExpander:
    """The expander instance serving ``layout`` on ``graph``.

    The built-in ``"csr"`` / ``"kernel"`` layouts share one expander
    cached on the graph's compiled layout (its block buffers are
    reusable, and the kernel layout consumes the very same partitions);
    ``"implicit"`` serves :class:`~repro.graphs.implicit.ImplicitGraph`
    handles through a window-synthesizing expander cached on the handle;
    fixture layouts construct fresh instances.
    """
    factory = _LAYOUT_FACTORIES.get(layout)
    if factory is None:
        raise ValueError(
            f"unknown layout {layout!r} (have {known_layouts()})"
        )
    if layout == "implicit":
        if not getattr(graph, "is_implicit", False):
            raise ValueError(
                'layout "implicit" requires an ImplicitGraph handle; '
                f"got {type(graph).__name__} (use \"csr\" or \"dict\")"
            )
        if factory is ImplicitBallExpander:
            if graph._expander is None:
                graph._expander = ImplicitBallExpander(graph)
            return graph._expander
        return factory(graph)
    if layout in ("csr", "kernel"):
        csr = graph.csr()
        if csr._expander is None:
            csr._expander = BatchBallExpander(graph)
        return csr._expander
    return factory(graph)


def resolve_layout(layout: str, graph: Any, prefer_csr: bool) -> str:
    """Resolve a request's layout knob to a concrete layout name.

    ``"auto"`` routes :class:`~repro.graphs.implicit.ImplicitGraph`
    handles to the synthesized ``"implicit"`` path, and otherwise picks
    ``"csr"`` when the engine prefers it *and* the graph is frozen and
    non-empty (the CSR layout only exists for frozen graphs); anything
    explicit is validated and passed through.
    """
    if layout == "auto":
        if getattr(graph, "is_implicit", False):
            return "implicit" if getattr(graph, "n", 0) > 0 else "dict"
        if (
            prefer_csr
            and getattr(graph, "is_frozen", False)
            and getattr(graph, "n", 0) > 0
        ):
            return "csr"
        return "dict"
    if layout == "implicit" and not getattr(graph, "is_implicit", False):
        raise ValueError(
            'layout "implicit" requires an implicit graph family handle '
            "(see docs/IMPLICIT.md); materialized graphs use "
            '"dict"/"csr"/"kernel"'
        )
    if layout != "dict" and layout not in _LAYOUT_FACTORIES:
        raise ValueError(
            f"unknown layout {layout!r} (have {known_layouts()})"
        )
    return layout


# ----------------------------------------------------------------------
# CSR-backed view materialization (DirectEngine's explicit-csr path)
# ----------------------------------------------------------------------

def gather_view_csr(
    graph: Graph,
    v: int,
    radius: int,
    ids: Optional[Sequence[int]] = None,
    inputs: Optional[Sequence[Any]] = None,
    randomness: Optional[Sequence[Any]] = None,
    orientation: Optional[Any] = None,
):
    """:func:`~repro.local_model.views.gather_view` over the CSR arrays.

    Bit-identical views (same exploration order, same port pairs — the
    reverse-port table supplies ``port_to`` in O(1)); the parity suite
    asserts equality against the reference on every generated graph.
    """
    if radius < 0:
        raise ValueError("radius must be non-negative")
    csr = graph.csr()
    order, local, dist = _explore(csr, [v], radius)
    return _collect(
        csr, order, local, dist, radius, 0, ids, inputs, randomness, orientation
    )


def gather_edge_view_csr(
    graph: Graph,
    edge: Tuple[int, int],
    radius: int,
    ids: Optional[Sequence[int]] = None,
    inputs: Optional[Sequence[Any]] = None,
    randomness: Optional[Sequence[Any]] = None,
    orientation: Optional[Any] = None,
):
    """:func:`~repro.local_model.views.gather_edge_view` over CSR arrays."""
    if radius < 0:
        raise ValueError("radius must be non-negative")
    u, v = edge
    if not graph.has_edge(u, v):
        raise ValueError(f"({u}, {v}) is not an edge")
    if orientation is not None and orientation.is_labeled(u, v):
        if orientation.sign_at(u, v) > 0:
            u, v = v, u  # make local 0 the endpoint with the negative view
    csr = graph.csr()
    order, local, dist = _explore(csr, [u, v], radius)
    return _collect(
        csr, order, local, dist, radius, 0, ids, inputs, randomness, orientation
    )
