"""Per-node execution context for the message-passing LOCAL simulator.

A node's algorithm sees the world *only* through its
:class:`NodeContext`: its own degree, the global parameters ``n`` and
``Delta`` (which the LOCAL model makes common knowledge), its identifier
(if the run is not anonymous), its input label (if the LCL has inputs),
per-port orientation labels (if the run is on an oriented graph), a
private source of randomness, and whatever it stores in ``state``.

The simulator owns construction of contexts; algorithms must never touch
the underlying graph.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Optional, Tuple

__all__ = ["NodeContext", "UNSET"]


class _Unset:
    """Sentinel for "no output produced yet"."""

    _instance: Optional["_Unset"] = None

    def __new__(cls) -> "_Unset":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "UNSET"


#: Sentinel marking a node that has not yet produced an output.
UNSET = _Unset()


class NodeContext:
    """Everything a node knows during a LOCAL execution.

    Attributes
    ----------
    degree:
        The node's own degree (known before round 1).
    n:
        Number of nodes in the network (global knowledge in LOCAL).
    delta:
        Maximum degree bound (global knowledge in LOCAL).
    identifier:
        The node's unique identifier, or ``None`` in anonymous runs.
    input_label:
        The node's LCL input label (``None`` when the LCL has no inputs).
    port_directions:
        If the run is oriented: mapping ``port -> (dim, sign)``.
    rng:
        Private randomness.  Deterministic algorithms must not use it;
        the simulator can enforce this (see ``forbid_randomness``).
    state:
        Scratch space persisted across rounds.
    round_number:
        The current round (0 during ``init``).
    """

    __slots__ = (
        "degree",
        "n",
        "delta",
        "identifier",
        "input_label",
        "port_directions",
        "rng",
        "state",
        "round_number",
        "_output",
        "_halted",
        "_randomness_forbidden",
    )

    def __init__(
        self,
        degree: int,
        n: int,
        delta: int,
        identifier: Optional[int],
        input_label: Any,
        port_directions: Optional[Dict[int, Tuple[int, int]]],
        rng: random.Random,
        forbid_randomness: bool = False,
    ):
        self.degree = degree
        self.n = n
        self.delta = delta
        self.identifier = identifier
        self.input_label = input_label
        self.port_directions = port_directions
        self.state: Dict[str, Any] = {}
        self.round_number = 0
        self._output: Any = UNSET
        self._halted = False
        self._randomness_forbidden = forbid_randomness
        if forbid_randomness:
            self.rng = _ForbiddenRandom()
        else:
            self.rng = rng

    # ------------------------------------------------------------------
    def halt(self, output: Any) -> None:
        """Stop participating and commit ``output`` as this node's answer."""
        if self._halted:
            raise RuntimeError("node has already halted")
        self._output = output
        self._halted = True

    def set_output(self, output: Any) -> None:
        """Commit an output without halting (the node keeps participating).

        Useful for algorithms that refine a tentative answer; the final
        committed value is what the verifier sees.
        """
        self._output = output

    @property
    def halted(self) -> bool:
        """Whether this node has halted."""
        return self._halted

    @property
    def output(self) -> Any:
        """The committed output (``UNSET`` if none yet)."""
        return self._output

    def port_in_direction(self, dim: int, sign: int) -> Optional[int]:
        """The port pointing in direction ``(dim, sign)``, if oriented."""
        if self.port_directions is None:
            return None
        for port, ds in self.port_directions.items():
            if ds == (dim, sign):
                return port
        return None


class _ForbiddenRandom(random.Random):
    """A random source that raises on use — enforces determinism."""

    def random(self) -> float:  # pragma: no cover - message is the point
        raise RuntimeError("deterministic run: algorithm attempted to use randomness")

    def getrandbits(self, k: int) -> int:
        raise RuntimeError("deterministic run: algorithm attempted to use randomness")

    def seed(self, *args: Any, **kwargs: Any) -> None:
        pass
