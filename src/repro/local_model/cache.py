"""Canonical-view memoization: compute each view class once.

On the graph families the paper cares about (Δ-regular trees, tori,
cycles) almost all radius-t balls are pairwise isomorphic: a balanced
4-regular tree with thousands of nodes has only a handful of distinct
radius-2 view classes.  The direct engines
(:func:`~repro.local_model.network.run_view_algorithm`,
:func:`~repro.local_model.edge_model.run_edge_view_algorithm`)
re-materialize and re-evaluate the same canonical view at every node;
the cached engines here key each node's ball by its canonical
signature (:func:`~repro.local_model.views.view_signature`), evaluate
the algorithm **once per distinct class**, and broadcast the output to
every node sharing the class.

This is faithful to the theory, not just an optimization: Lemmas 7/8
of the paper (and the speedup simulation as a whole) argue over
isomorphism classes of balls, and a "T-round algorithm is a mapping
from radius-T neighborhoods to outputs" — the cache *is* that mapping,
materialized lazily.

Exactness contract
------------------
A cached run must produce the exact same
:class:`~repro.local_model.network.ExecutionResult` as a direct run —
bit for bit.  This hinges on the signature being a *perfect* canonical
key (equal signature iff equal :meth:`~repro.local_model.views.View.key`),
which is proven two ways: the property suite
(``tests/test_view_cache_properties.py``) checks signature equality
against an independent ball-isomorphism decision procedure, and the
differential harness (``tests/differential.py``) asserts bit-identical
results over a grid of (algorithm × graph family × radius × labeling).

Because the signature encodes *everything* a node can see — structure,
ports, orientation labels, identifiers, inputs, randomness — a cache
is safe to reuse across runs and graphs.  The one thing **not** in the
key is the algorithm itself: never share one :class:`ViewCache`
between different algorithms.

See ``docs/PERFORMANCE.md`` for the design discussion and measured
speedups (``benchmarks/BENCH_view_cache.json``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

from ..graphs.graph import Graph
from ..graphs.orientation import Orientation
from ..instrumentation.sizes import SizeEstimator, estimate_size
from ..instrumentation.tracer import Tracer
from .algorithm import ViewAlgorithm

__all__ = [
    "CacheStats",
    "KeyedCache",
    "ViewCache",
    "ball_assignment_key",
    "run_view_algorithm_cached",
    "run_edge_view_algorithm_cached",
]


@dataclass
class CacheStats:
    """Counters for one cache: every lookup is a hit or a miss.

    ``bytes`` approximates the retained size of stored keys and values
    (estimated with :func:`~repro.instrumentation.sizes.estimate_size`);
    ``distinct_classes`` is the number of stored entries — for the view
    cache, the number of distinct view-equivalence classes seen.
    """

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    bytes: int = 0
    distinct_classes: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def copy(self) -> "CacheStats":
        """An independent snapshot of the current counters."""
        return CacheStats(
            lookups=self.lookups,
            hits=self.hits,
            misses=self.misses,
            bytes=self.bytes,
            distinct_classes=self.distinct_classes,
        )

    def delta(self, since: "CacheStats") -> "CacheStats":
        """Counters accumulated after the ``since`` snapshot was taken."""
        return CacheStats(
            lookups=self.lookups - since.lookups,
            hits=self.hits - since.hits,
            misses=self.misses - since.misses,
            bytes=self.bytes - since.bytes,
            distinct_classes=self.distinct_classes - since.distinct_classes,
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (the ``on_cache`` hook's payload)."""
        return {
            "lookups": self.lookups,
            "hits": self.hits,
            "misses": self.misses,
            "bytes": self.bytes,
            "distinct_classes": self.distinct_classes,
            "hit_rate": self.hit_rate,
        }


_MISS = object()


class KeyedCache:
    """A stats-bearing memo table over hashable keys.

    The generic substrate shared by the view cache and the speedup
    engine's ball-assignment memoization
    (:class:`~repro.speedup.algorithms.NodeAlgorithm`): both map a
    canonical encoding of "everything the computing entity can see" to
    an output, computed once per distinct encoding.
    """

    #: Sentinel returned by :meth:`get` on a miss (never a stored value).
    MISS = _MISS

    def __init__(self, size_estimator: Optional[SizeEstimator] = None):
        self._store: Dict[Any, Any] = {}
        self._size = size_estimator or estimate_size
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._store)

    def get(self, key: Any) -> Any:
        """The stored value, or :attr:`MISS`; counts the lookup."""
        stats = self.stats
        stats.lookups += 1
        value = self._store.get(key, _MISS)
        if value is _MISS:
            stats.misses += 1
        else:
            stats.hits += 1
        return value

    def store(self, key: Any, value: Any) -> Any:
        """Store ``value`` under ``key`` and return it."""
        self._store[key] = value
        stats = self.stats
        stats.distinct_classes = len(self._store)
        stats.bytes += (self._size(key) + self._size(value) + 7) // 8
        return value

    def get_or_compute(self, key: Any, compute: Callable[[], Any]) -> Any:
        """The memoized value for ``key``, computing and storing on miss."""
        value = self.get(key)
        if value is _MISS:
            value = self.store(key, compute())
        return value

    def clear(self) -> None:
        """Drop every entry; the cumulative counters keep counting."""
        self._store.clear()
        self.stats.distinct_classes = 0
        self.stats.bytes = 0


class ViewCache(KeyedCache):
    """A per-algorithm memo table from canonical view signatures to outputs.

    Keys are :func:`~repro.local_model.views.view_signature` /
    :func:`~repro.local_model.views.edge_view_signature` tuples, which
    encode the complete visible ball (structure, ports, orientation,
    identifiers, inputs, randomness) — so one cache may be reused
    across runs and even across graphs.  The algorithm identity is
    *not* part of the key: use one cache per algorithm.
    """


def ball_assignment_key(
    values: Sequence[Any], table: Sequence[int]
) -> Tuple[Any, ...]:
    """Project per-node values through a resolved ball table.

    The one keying function shared by the finite runner
    (:func:`~repro.speedup.finite_runner.run_node_algorithm_on_oriented_graph`),
    the exact failure enumerations, and the tree algorithms' own
    memoization: entry ``i`` is the value the ball's ``i``-th word
    reads.  Equal keys mean the computing entity sees identical random
    data in identical positions — the oriented-tree analogue of
    :func:`~repro.local_model.views.view_signature`.
    """
    return tuple(values[i] for i in table)


def run_view_algorithm_cached(
    graph: Graph,
    algorithm: ViewAlgorithm,
    ids: Optional[Sequence[int]] = None,
    inputs: Optional[Sequence[Any]] = None,
    randomness: Optional[Sequence[Any]] = None,
    orientation: Optional[Orientation] = None,
    tracer: Optional[Tracer] = None,
    cache: Optional[ViewCache] = None,
) -> "ExecutionResult":  # noqa: F821 - imported lazily to avoid a cycle
    """Run a view algorithm, evaluating each distinct view class once.

    Produces the exact same result as
    :func:`~repro.local_model.network.run_view_algorithm`; pass a
    ``cache`` to reuse classes across runs (same algorithm only).  An
    optional ``tracer`` sees one
    :meth:`~repro.instrumentation.Tracer.on_view` per *materialized*
    ball — i.e. one per distinct class, which is the point — plus one
    :meth:`~repro.instrumentation.Tracer.on_cache` with the run's
    lookup statistics before ``on_run_end``.

    The memo loop itself lives in
    :class:`~repro.core.cached.CachedEngine`; this entry point is a
    signature-stable adapter over it.
    """
    from ..core.cached import CachedEngine
    from ..core.engine import SimRequest

    report = CachedEngine(cache=cache).run(
        SimRequest(
            kind="view",
            graph=graph,
            algorithm=algorithm,
            ids=ids,
            inputs=inputs,
            randomness=randomness,
            orientation=orientation,
        ),
        tracer=tracer,
    )
    return report.to_execution_result()


def run_edge_view_algorithm_cached(
    graph: Graph,
    algorithm: "EdgeViewAlgorithm",  # noqa: F821 - imported lazily below
    ids: Optional[Sequence[int]] = None,
    inputs: Optional[Sequence[Any]] = None,
    randomness: Optional[Sequence[Any]] = None,
    orientation: Optional[Orientation] = None,
    tracer: Optional[Tracer] = None,
    cache: Optional[ViewCache] = None,
) -> "EdgeExecutionResult":  # noqa: F821
    """Edge-model analogue of :func:`run_view_algorithm_cached`.

    Evaluates ``algorithm.output_fn`` once per distinct edge-ball class
    and matches :func:`~repro.local_model.edge_model.run_edge_view_algorithm`
    bit for bit.  Adapter over :class:`~repro.core.cached.CachedEngine`.
    """
    from ..core.cached import CachedEngine
    from ..core.engine import SimRequest

    report = CachedEngine(cache=cache).run(
        SimRequest(
            kind="edge",
            graph=graph,
            algorithm=algorithm,
            ids=ids,
            inputs=inputs,
            randomness=randomness,
            orientation=orientation,
        ),
        tracer=tracer,
    )
    return report.to_edge_result()
