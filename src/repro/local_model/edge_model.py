"""The edge-based LOCAL model of Section 5.

In the edge-centric model the *edges* are the computing entities, and two
edges can communicate iff they share an endpoint.  A t-round edge
algorithm is a function of the edge neighborhood ``B_t({u, v}) =
B_{t-1}(u) ∪ B_{t-1}(v)`` (paper convention), i.e. a node-ball radius of
``t - 1`` around each endpoint.

:func:`run_edge_view_algorithm` evaluates such a functional algorithm on
every edge; the message-passing equivalent (edges relaying through shared
endpoints) is intentionally not duplicated here — the equivalence is the
same "views = rounds" identity as in the node model.  The evaluation
loop itself lives behind the engine seam
(:class:`repro.core.direct.DirectEngine`); this entry point is a
signature-stable adapter over :func:`repro.core.simulate`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Sequence

from ..graphs.graph import Graph, Edge, edge_key
from ..graphs.orientation import Orientation
from ..instrumentation.tracer import Tracer
from .views import View

__all__ = ["EdgeViewAlgorithm", "EdgeExecutionResult", "run_edge_view_algorithm"]


class EdgeViewAlgorithm:
    """A t-round edge algorithm as a function of edge views.

    Parameters
    ----------
    rounds:
        The ``t`` in the paper's ``B_t(e)``; the view materialized for
        each edge has node-ball radius ``t - 1`` around both endpoints.
        ``rounds = 0`` gives each edge only its own two endpoints' port
        and orientation data (radius-0 balls at both ends).
    output_fn:
        Maps the edge's :class:`~repro.local_model.views.View` to its
        output label.
    name:
        Report label.
    """

    def __init__(self, rounds: int, output_fn: Callable[[View], Any], name: str = "edge-view"):
        if rounds < 0:
            raise ValueError("rounds must be non-negative")
        self.rounds = rounds
        self.output_fn = output_fn
        self.name = name

    def view_radius(self) -> int:
        """Node-ball radius around each endpoint for this algorithm."""
        return max(0, self.rounds - 1)


@dataclass
class EdgeExecutionResult:
    """Outcome of an edge-model execution."""

    outputs: Dict[Edge, Any]
    rounds: int

    def at(self, u: int, v: int) -> Any:
        """Output of the edge ``{u, v}``."""
        return self.outputs[edge_key(u, v)]


def run_edge_view_algorithm(
    graph: Graph,
    algorithm: EdgeViewAlgorithm,
    ids: Optional[Sequence[int]] = None,
    inputs: Optional[Sequence[Any]] = None,
    randomness: Optional[Sequence[Any]] = None,
    orientation: Optional[Orientation] = None,
    tracer: Optional[Tracer] = None,
    view_cache: Optional[Any] = None,
) -> EdgeExecutionResult:
    """Evaluate an edge algorithm on every edge of ``graph``.

    An optional ``tracer`` observes one
    :meth:`~repro.instrumentation.Tracer.on_view` event per edge ball
    (``center`` is the edge's ``(u, v)`` node pair).

    ``view_cache`` switches to the canonical-view memoization engine
    (:class:`~repro.core.cached.CachedEngine`) — a
    :class:`~repro.local_model.cache.ViewCache` to keep the memo
    table, or ``True`` for a fresh per-run cache; results are identical.
    """
    # Lazy: the core package imports sibling local_model modules.
    from ..core.cached import CachedEngine
    from ..core.direct import DirectEngine
    from ..core.engine import SimRequest

    if view_cache is not None and view_cache is not False:
        engine = CachedEngine(
            cache=None if view_cache is True else view_cache
        )
    else:
        engine = DirectEngine()
    report = engine.run(
        SimRequest(
            kind="edge",
            graph=graph,
            algorithm=algorithm,
            ids=ids,
            inputs=inputs,
            randomness=randomness,
            orientation=orientation,
        ),
        tracer=tracer,
    )
    return report.to_edge_result()
