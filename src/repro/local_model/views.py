"""Radius-t neighborhood views.

Section 2 of the paper defines the t-radius neighborhood ``B_t(v)`` of a
node as the subgraph *induced* by all nodes at distance at most ``t``,
together with the restriction of any labelings, and the t-radius
neighborhood of an edge ``{u, v}`` as ``B_{t-1}(u) ∪ B_{t-1}(v)``.

:func:`gather_view` materializes exactly that object.  The view's nodes
are relabeled ``0, 1, 2, ...`` in a *canonical exploration order* (BFS
from the center, expanding neighbors in port order), which is precisely
the coordinate system an anonymous node can construct for itself.  Two
nodes whose neighborhoods are indistinguishable in the model produce
views with identical :meth:`View.key`, so a 0-round-equivalent mapping
``key -> output`` faithfully represents a view algorithm.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..graphs.graph import Graph, edge_key
from ..graphs.orientation import Orientation

__all__ = [
    "View",
    "gather_view",
    "gather_edge_view",
    "view_signature",
    "edge_view_signature",
]


class View:
    """An immutable snapshot of a radius-t ball around a center.

    Attributes
    ----------
    radius:
        The radius this view was gathered at.
    center:
        Local index of the center node (always 0 for node views; for edge
        views the two endpoints are locals 0 and 1).
    distances:
        ``distances[i]`` is the hop distance of local node ``i`` from the
        center (for edge views: from the nearer endpoint).
    degrees:
        True degrees *in the full graph* (a node knows its degree from
        round 0, so degrees of all ball members are part of the view).
    identifiers:
        Identifiers of the ball members, or ``None`` if anonymous.
    inputs:
        Input labels, or ``None`` if the problem has no inputs.
    randomness:
        Random labels (e.g. bit strings) per ball member, or ``None``.
    edges:
        The induced edges as tuples ``(i, j, port_i, port_j, direction)``
        with ``i < j`` in local indices; ``direction`` is the ``(dim,
        sign)`` of the edge as seen from ``i``, or ``None`` if unoriented.
    originals:
        The original graph indices, for debugging and verification only —
        algorithms must not consult this (it would break anonymity).
    """

    __slots__ = (
        "radius",
        "center",
        "distances",
        "degrees",
        "identifiers",
        "inputs",
        "randomness",
        "edges",
        "originals",
        "_local_adj",
    )

    def __init__(
        self,
        radius: int,
        center: int,
        distances: Sequence[int],
        degrees: Sequence[int],
        identifiers: Optional[Sequence[int]],
        inputs: Optional[Sequence[Any]],
        randomness: Optional[Sequence[Any]],
        edges: Sequence[Tuple[int, int, int, int, Optional[Tuple[int, int]]]],
        originals: Sequence[int],
    ):
        self.radius = radius
        self.center = center
        self.distances = tuple(distances)
        self.degrees = tuple(degrees)
        self.identifiers = tuple(identifiers) if identifiers is not None else None
        self.inputs = tuple(inputs) if inputs is not None else None
        self.randomness = tuple(randomness) if randomness is not None else None
        self.edges = tuple(sorted(edges))
        self.originals = tuple(originals)
        adj: List[List[Tuple[int, int, int, Optional[Tuple[int, int]]]]] = [
            [] for _ in self.distances
        ]
        for i, j, pi, pj, direction in self.edges:
            rev = None if direction is None else (direction[0], -direction[1])
            adj[i].append((j, pi, pj, direction))
            adj[j].append((i, pj, pi, rev))
        self._local_adj = tuple(tuple(sorted(a, key=lambda t: t[1])) for a in adj)

    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        """Number of nodes in the ball."""
        return len(self.distances)

    def local_neighbors(self, i: int) -> Tuple[Tuple[int, int, int, Optional[Tuple[int, int]]], ...]:
        """Neighbors of local node ``i`` inside the view.

        Each entry is ``(j, port_at_i, port_at_j, direction_seen_from_i)``,
        sorted by ``port_at_i``.
        """
        return self._local_adj[i]

    def neighbor_in_direction(self, i: int, dim: int, sign: int) -> Optional[int]:
        """Local neighbor of ``i`` in orientation direction ``(dim, sign)``."""
        for j, _, _, direction in self._local_adj[i]:
            if direction == (dim, sign):
                return j
        return None

    def nodes_at_distance(self, d: int) -> List[int]:
        """Local indices at distance exactly ``d`` from the center."""
        return [i for i, dist in enumerate(self.distances) if dist == d]

    def key(self) -> Tuple:
        """Canonical hashable encoding of everything the node can see."""
        return (
            self.radius,
            self.center,
            self.distances,
            self.degrees,
            self.identifiers,
            self.inputs,
            self.randomness,
            self.edges,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, View):
            return NotImplemented
        return self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"View(radius={self.radius}, nodes={self.node_count})"


def _explore(
    graph: Graph, seeds: Sequence[int], radius: int
) -> Tuple[List[int], Dict[int, int], Dict[int, int]]:
    """Port-order BFS from ``seeds``; returns (order, local index, distance)."""
    order: List[int] = []
    local: Dict[int, int] = {}
    dist: Dict[int, int] = {}
    frontier = deque()
    for s in seeds:
        if s not in local:
            local[s] = len(order)
            order.append(s)
            dist[s] = 0
            frontier.append(s)
    while frontier:
        v = frontier.popleft()
        if dist[v] >= radius:
            continue
        for u in graph.neighbors(v):  # port order
            if u not in local:
                local[u] = len(order)
                order.append(u)
                dist[u] = dist[v] + 1
                frontier.append(u)
    return order, local, dist


def _collect(
    graph: Graph,
    order: List[int],
    local: Dict[int, int],
    dist: Dict[int, int],
    radius: int,
    center: int,
    ids: Optional[Sequence[int]],
    inputs: Optional[Sequence[Any]],
    randomness: Optional[Sequence[Any]],
    orientation: Optional[Orientation],
) -> View:
    edges = []
    seen = set()
    for v in order:
        for u in graph.neighbors(v):
            if u not in local:
                continue
            key = edge_key(u, v)
            if key in seen:
                continue
            seen.add(key)
            i, j = local[v], local[u]
            if i > j:
                i, j = j, i
                v_, u_ = u, v
            else:
                v_, u_ = v, u
            direction = None
            if orientation is not None and orientation.is_labeled(v_, u_):
                direction = orientation.direction_at(v_, u_)
            edges.append((i, j, graph.port_to(v_, u_), graph.port_to(u_, v_), direction))
    return View(
        radius=radius,
        center=center,
        distances=[dist[v] for v in order],
        degrees=[graph.degree(v) for v in order],
        identifiers=None if ids is None else [ids[v] for v in order],
        inputs=None if inputs is None else [inputs[v] for v in order],
        randomness=None if randomness is None else [randomness[v] for v in order],
        edges=edges,
        originals=order,
    )


def _signature(
    graph: Graph,
    seeds: Sequence[int],
    radius: int,
    ids: Optional[Sequence[int]],
    inputs: Optional[Sequence[Any]],
    randomness: Optional[Sequence[Any]],
    orientation: Optional[Orientation],
    tag: str,
) -> Tuple:
    """Canonical ball signature without materializing a :class:`View`.

    The signature encodes, per ball node in exploration order, the full
    port row ``(local neighbor index or -1 if outside the ball)`` plus
    any labels.  Port rows determine the induced edges *with* both port
    numbers, the degrees (row length), and the distances (BFS from the
    seeds is a function of the rows), so two balls have equal signatures
    iff their :meth:`View.key` encodings are equal — the property the
    view cache relies on, proven by the differential harness and the
    property suite (``tests/test_view_cache_properties.py``).

    This is the hot path of the cached engines: it avoids the
    per-neighbor tuple allocations, edge sorting, and adjacency
    construction that :func:`gather_view` pays for.
    """
    adj = graph.adjacency_rows()
    order: List[int] = []
    local: Dict[int, int] = {}
    for s in seeds:
        if s not in local:
            local[s] = len(order)
            order.append(s)
    # Layer-synchronous BFS: the frontier IS the distance bookkeeping.
    layer = order[:]
    for _ in range(radius):
        next_layer: List[int] = []
        for v in layer:
            for u in adj[v]:
                if u not in local:
                    local[u] = len(order)
                    order.append(u)
                    next_layer.append(u)
        if not next_layer:
            break
        layer = next_layer
    get = local.get
    if orientation is None:
        rows = tuple([tuple([get(u, -1) for u in adj[v]]) for v in order])
    else:
        labeled_rows: List[Tuple] = []
        for v in order:
            row: List[Any] = []
            for u in adj[v]:
                j = get(u, -1)
                if j >= 0 and orientation.is_labeled(v, u):
                    dim, sign = orientation.direction_at(v, u)
                    row.append((j, dim, sign))
                else:
                    row.append(j)
            labeled_rows.append(tuple(row))
        rows = tuple(labeled_rows)
    return (
        tag,
        radius,
        rows,
        None if ids is None else tuple(ids[v] for v in order),
        None if inputs is None else tuple(inputs[v] for v in order),
        None if randomness is None else tuple(randomness[v] for v in order),
    )


def view_signature(
    graph: Graph,
    v: int,
    radius: int,
    ids: Optional[Sequence[int]] = None,
    inputs: Optional[Sequence[Any]] = None,
    randomness: Optional[Sequence[Any]] = None,
    orientation: Optional[Orientation] = None,
) -> Tuple:
    """Hashable canonical key of ``B_radius(v)``.

    Two nodes get equal signatures iff their :func:`gather_view` views
    have equal :meth:`View.key` — i.e. iff they are indistinguishable
    in the model.  Cheaper to compute than the view itself; this is the
    cache key of :mod:`repro.local_model.cache`.
    """
    if radius < 0:
        raise ValueError("radius must be non-negative")
    return _signature(
        graph, (v,), radius, ids, inputs, randomness, orientation, "node"
    )


def edge_view_signature(
    graph: Graph,
    edge: Tuple[int, int],
    radius: int,
    ids: Optional[Sequence[int]] = None,
    inputs: Optional[Sequence[Any]] = None,
    randomness: Optional[Sequence[Any]] = None,
    orientation: Optional[Orientation] = None,
) -> Tuple:
    """Hashable canonical key of ``B_radius(u) ∪ B_radius(v)``.

    Mirrors :func:`gather_edge_view` exactly, including the canonical
    endpoint swap on oriented edges.
    """
    if radius < 0:
        raise ValueError("radius must be non-negative")
    u, v = edge
    if not graph.has_edge(u, v):
        raise ValueError(f"({u}, {v}) is not an edge")
    if orientation is not None and orientation.is_labeled(u, v):
        if orientation.sign_at(u, v) > 0:
            u, v = v, u  # make local 0 the endpoint with the negative view
    return _signature(
        graph, (u, v), radius, ids, inputs, randomness, orientation, "edge"
    )


def gather_view(
    graph: Graph,
    v: int,
    radius: int,
    ids: Optional[Sequence[int]] = None,
    inputs: Optional[Sequence[Any]] = None,
    randomness: Optional[Sequence[Any]] = None,
    orientation: Optional[Orientation] = None,
) -> View:
    """Materialize ``B_radius(v)`` as a :class:`View` with center ``v``."""
    if radius < 0:
        raise ValueError("radius must be non-negative")
    order, local, dist = _explore(graph, [v], radius)
    return _collect(
        graph, order, local, dist, radius, 0, ids, inputs, randomness, orientation
    )


def gather_edge_view(
    graph: Graph,
    edge: Tuple[int, int],
    radius: int,
    ids: Optional[Sequence[int]] = None,
    inputs: Optional[Sequence[Any]] = None,
    randomness: Optional[Sequence[Any]] = None,
    orientation: Optional[Orientation] = None,
) -> View:
    """Materialize ``B_radius(u) ∪ B_radius(v)`` for the edge ``{u, v}``.

    The paper's ``B_t(e)`` equals this with ``radius = t - 1``.  If the
    edge is oriented, the endpoint that sees the edge in a *negative*
    direction becomes local 0 (this gives both endpoints the same
    canonical picture); otherwise endpoint order follows the ``edge``
    argument as given.
    """
    if radius < 0:
        raise ValueError("radius must be non-negative")
    u, v = edge
    if not graph.has_edge(u, v):
        raise ValueError(f"({u}, {v}) is not an edge")
    if orientation is not None and orientation.is_labeled(u, v):
        if orientation.sign_at(u, v) > 0:
            u, v = v, u  # make local 0 the endpoint with the negative view
    order, local, dist = _explore(graph, [u, v], radius)
    return _collect(
        graph, order, local, dist, radius, 0, ids, inputs, randomness, orientation
    )
