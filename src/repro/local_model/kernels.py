"""Vectorized algorithm kernels: whole-run NumPy execution plans.

PR 5 vectorized view *partitioning* (:mod:`repro.local_model.batch_views`
computes every ball class in one pass), but the algorithm step still ran
per class in Python, and round-based message passing looped node by node
per round.  This module closes that gap with two kernel shapes, both
opt-in and both guaranteed bit-identical to the reference engines:

**View kernels** map a whole :class:`PackedRows` block — the packed
streams of every view-equivalence class, parsed back into flat arrays —
to one output per class at once (a vectorized *class table*), which
:func:`broadcast_table` then fans out to the class members.  No
per-class Python call remains on the happy path.

**Local (round) kernels** express a synchronous message-passing
algorithm as one gather/scatter step per round over the CSR
``indptr/indices`` arrays — the SpMV shape — with a :class:`KernelState`
(halt/output/round arrays plus kernel-owned state) threaded across
rounds by :func:`run_local_kernel`, which reproduces the direct
engine's round loop exactly: same per-node RNG derivation, same
``max_rounds`` runaway guard (same message), same halt-round
accounting.

Kernels never guess: anything a kernel cannot reproduce exactly is
*declined* via :class:`KernelUnsupported` **before** any observable
effect (in particular before the master RNG is touched), and the
engines fall back to the reference per-entity path — so registering a
kernel can change performance, never results.  The authoring contract,
the packed-row format, and a worked example live in ``docs/KERNELS.md``;
the parity suites (``tests/test_kernels.py``) and the conformance
``layouts=`` axis prove the bit-identity.

Engines reach kernels through ``SimRequest.layout="kernel"`` (all
backends) or auto-escalation of ``local`` requests on frozen graphs by
the ``prefer_csr`` backends; see
:func:`repro.local_model.batch_views.resolve_layout`.
"""

from __future__ import annotations

import importlib
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Type

import numpy as np

from .batch_views import ClassPartition, _exclusive_cumsum

__all__ = [
    "KernelUnsupported",
    "PackedRows",
    "KernelState",
    "LocalKernel",
    "register_view_kernel",
    "view_kernel_for",
    "register_local_kernel",
    "local_kernel_for",
    "register_finite_kernel",
    "finite_kernel_for",
    "has_kernel",
    "run_view_kernel",
    "broadcast_table",
    "run_local_kernel",
]


class KernelUnsupported(Exception):
    """A kernel declines a run it cannot reproduce exactly.

    Raised by the registry helpers (``"no-kernel"``), the packed-row
    parser (``"python-partition"``), or a kernel's own feasibility
    checks (``"unsupported: ..."``).  Engines catch it and run the
    reference per-entity path instead — declining is always safe, so
    kernels should decline on *any* doubt.  Must never be raised after
    a kernel has produced observable effects (RNG draws, mutations).
    """


# ----------------------------------------------------------------------
# Packed view rows: the vectorized face of a ClassPartition
# ----------------------------------------------------------------------

class PackedRows:
    """The packed streams of one :class:`ClassPartition`, as flat arrays.

    Every numpy-path class key carries its ball's canonical stream
    ``[k, degrees..., port rows..., label sections...]`` as bytes (see
    ``docs/KERNELS.md`` for the full format).  This class concatenates
    the per-class streams back into one ``int64`` buffer so a view
    kernel can compute all class outputs with array operations.

    Attributes
    ----------
    count:
        Number of classes (= rows).
    tag, radius, flags, itemsize:
        The shared key prefix: entity tag (``"v"`` / ``"e"``), view
        radius, ``(has_ids, has_inputs, has_randomness)`` label flags,
        and the packed element width in bytes (4 or 8).
    buf, offsets, lengths, k:
        The concatenated streams, each class's start offset and element
        length within ``buf``, and each class's ball size ``k``
        (``buf[offsets]`` — the stream's self-delimiting header).
    """

    __slots__ = ("count", "tag", "radius", "flags", "itemsize",
                 "buf", "offsets", "lengths", "k", "ncols")

    #: Label sections appear in this fixed slot order when present.
    _SLOTS = ("ids", "inputs", "randomness")

    def __init__(
        self,
        count: int,
        tag: str,
        radius: int,
        flags: Tuple[bool, ...],
        itemsize: int,
        buf: np.ndarray,
        offsets: np.ndarray,
        lengths: np.ndarray,
        k: np.ndarray,
    ):
        self.count = count
        self.tag = tag
        self.radius = radius
        self.flags = flags
        self.itemsize = itemsize
        self.buf = buf
        self.offsets = offsets
        self.lengths = lengths
        self.k = k
        self.ncols = sum(1 for f in flags if f)

    @classmethod
    def from_partition(cls, partition: ClassPartition) -> "PackedRows":
        """Parse a numpy-path partition's keys into packed rows.

        Raises
        ------
        KernelUnsupported
            With reason ``"python-partition"`` when the partition came
            from the reference fallback (its keys are signature tuples,
            not packed streams) — the caller must fall back too.
        """
        if partition.path != "numpy":
            raise KernelUnsupported("python-partition")
        keys = partition.keys
        empty = np.zeros(0, dtype=np.int64)
        if not keys:
            return cls(0, "", 0, (False, False, False), 8,
                       empty, empty, empty, empty)
        tag, radius, key_flags, _ = keys[0]
        flags = tuple(bool(f) for f in key_flags[:3])
        itemsize = int(key_flags[3])
        dtype = np.int32 if itemsize == 4 else np.int64
        blob = b"".join(key[3] for key in keys)
        buf = np.asarray(np.frombuffer(blob, dtype=dtype), dtype=np.int64)
        lengths = np.fromiter(
            (len(key[3]) // itemsize for key in keys),
            dtype=np.int64, count=len(keys),
        )
        offsets = _exclusive_cumsum(lengths)
        return cls(len(keys), tag, int(radius), flags, itemsize,
                   buf, offsets, lengths, buf[offsets])

    # -- label-section accessors ----------------------------------------
    def column_index(self, slot: str) -> Optional[int]:
        """Position of ``slot`` among the present label sections, or None."""
        i = self._SLOTS.index(slot)
        if not self.flags[i]:
            return None
        return sum(1 for f in self.flags[:i] if f)

    def _column_start(self, slot: str) -> np.ndarray:
        ci = self.column_index(slot)
        if ci is None:
            raise KernelUnsupported(
                f"unsupported: no {slot} labeling in the packed stream"
            )
        rowlen = self.lengths - 1 - (1 + self.ncols) * self.k
        return self.offsets + 1 + self.k + rowlen + ci * self.k

    def center(self, slot: str) -> np.ndarray:
        """Each class's center label (exploration order starts at the
        center, so this is the first entry of the section) — int64[count]."""
        return self.buf[self._column_start(slot)]

    def column(self, slot: str) -> Tuple[np.ndarray, np.ndarray]:
        """One label section of every class, gathered contiguously.

        Returns ``(values, bounds)``: the concatenated per-class label
        values (ball-exploration order, ``k[c]`` entries per class) and
        the exclusive-cumsum segment boundaries suitable for
        ``np.<ufunc>.reduceat`` (every ball has ``k >= 1``).
        """
        starts = self._column_start(slot)
        total = int(self.k.sum())
        bounds = _exclusive_cumsum(self.k)
        pos = np.repeat(starts - bounds, self.k) + np.arange(
            total, dtype=np.int64
        )
        return self.buf[pos], bounds

    def with_column(self, slot: str, values: np.ndarray) -> "PackedRows":
        """A copy of these rows with one label section rewritten.

        ``values`` aligns with :meth:`column`'s concatenated layout
        (ball-exploration order, ``k[c]`` entries per class).  The
        projection kernels use this to substitute derived labels — e.g.
        per-class order ranks — while keeping every other section, and
        therefore the inner kernel's parsing, untouched.
        """
        starts = self._column_start(slot)
        total = int(self.k.sum())
        bounds = _exclusive_cumsum(self.k)
        pos = np.repeat(starts - bounds, self.k) + np.arange(
            total, dtype=np.int64
        )
        buf = self.buf.copy()
        buf[pos] = np.asarray(values, dtype=np.int64)
        return PackedRows(self.count, self.tag, self.radius, self.flags,
                          self.itemsize, buf, self.offsets, self.lengths,
                          self.k)

    def segment_max(self, slot: str) -> np.ndarray:
        """Per-class maximum over one label section — int64[count]."""
        vals, bounds = self.column(slot)
        return np.maximum.reduceat(vals, bounds)

    def segment_max_count(self, slot: str) -> Tuple[np.ndarray, np.ndarray]:
        """Per-class ``(max, multiplicity of the max)`` over a section."""
        vals, bounds = self.column(slot)
        mx = np.maximum.reduceat(vals, bounds)
        seg = np.repeat(np.arange(self.count, dtype=np.int64), self.k)
        cnt = np.add.reduceat((vals == mx[seg]).astype(np.int64), bounds)
        return mx, cnt

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PackedRows(classes={self.count}, tag={self.tag!r}, "
            f"radius={self.radius}, flags={self.flags})"
        )


# ----------------------------------------------------------------------
# Kernel registries (one axis per kernel shape, MRO-resolved)
# ----------------------------------------------------------------------

#: View kernels: algorithm class -> fn(algorithm, PackedRows) -> table.
_VIEW_KERNELS: Dict[type, Callable[[Any, PackedRows], Sequence[Any]]] = {}

#: Local kernels: algorithm class -> LocalKernel factory.
_LOCAL_KERNELS: Dict[type, Callable[[Any], "LocalKernel"]] = {}

#: Finite kernels: algorithm class -> fn(algorithm, values, tables)
#: -> (outputs, failing).  See :func:`register_finite_kernel`.
_FINITE_KERNELS: Dict[type, Callable[..., Tuple[List[Any], List[int]]]] = {}

_BUILTINS_LOADED = False


def _load_builtin_kernels() -> None:
    """Import the built-in kernel registrations, once, lazily.

    Lookup-triggered so the engines see the built-in kernels without
    anyone having to import :mod:`repro.algorithms.kernels` explicitly
    (mirroring ``ensure_builtins`` for the component registries), while
    keeping the import graph one-way at module load time.
    """
    global _BUILTINS_LOADED
    if not _BUILTINS_LOADED:
        _BUILTINS_LOADED = True
        importlib.import_module("repro.algorithms.kernels")


def register_view_kernel(
    algorithm_cls: type,
) -> Callable[[Callable[[Any, PackedRows], Sequence[Any]]],
              Callable[[Any, PackedRows], Sequence[Any]]]:
    """Decorator: register a view kernel for an algorithm class.

    The kernel is ``fn(algorithm, rows) -> per-class outputs`` (one
    entry per class, in class order); it must either reproduce the
    algorithm's ``output`` on every class representative exactly or
    raise :class:`KernelUnsupported`.  Lookup walks the MRO, so a
    subclass's kernel shadows its parent's — which is how the
    conformance broken-kernel fixture plants a wrong kernel without
    touching the honest one.
    """

    def decorator(fn):
        _VIEW_KERNELS[algorithm_cls] = fn
        return fn

    return decorator


def view_kernel_for(algorithm: Any) -> Optional[Callable]:
    """The registered view kernel serving ``algorithm``, or ``None``."""
    _load_builtin_kernels()
    for klass in type(algorithm).__mro__:
        fn = _VIEW_KERNELS.get(klass)
        if fn is not None:
            return fn
    return None


def register_local_kernel(
    algorithm_cls: type,
) -> Callable[[Callable[[Any], "LocalKernel"]],
              Callable[[Any], "LocalKernel"]]:
    """Decorator: register a :class:`LocalKernel` factory for a class.

    The factory (usually the kernel class itself) is called with the
    algorithm instance; MRO lookup as for :func:`register_view_kernel`.
    """

    def decorator(factory):
        _LOCAL_KERNELS[algorithm_cls] = factory
        return factory

    return decorator


def local_kernel_for(algorithm: Any) -> Optional[Callable]:
    """The registered local-kernel factory for ``algorithm``, or ``None``."""
    _load_builtin_kernels()
    for klass in type(algorithm).__mro__:
        factory = _LOCAL_KERNELS.get(klass)
        if factory is not None:
            return factory
    return None


def register_finite_kernel(
    algorithm_cls: type,
) -> Callable[[Callable[..., Tuple[List[Any], List[int]]]],
              Callable[..., Tuple[List[Any], List[int]]]]:
    """Decorator: register a finite-runner kernel for an algorithm class.

    The kernel is ``fn(algorithm, values, tables) -> (outputs, failing)``
    where ``values`` is the per-node random assignment and ``tables``
    the resolved ball tables (node -> ball-position -> node).  It must
    reproduce the reference per-node evaluation loop — the same output
    object per node and the same ascending list of failing nodes — or
    raise :class:`KernelUnsupported`; MRO lookup as for
    :func:`register_view_kernel`, so the conformance broken-trial
    fixture can shadow the honest kernel on a subclass.
    """

    def decorator(fn):
        _FINITE_KERNELS[algorithm_cls] = fn
        return fn

    return decorator


def finite_kernel_for(algorithm: Any) -> Optional[Callable]:
    """The registered finite kernel serving ``algorithm``, or ``None``."""
    _load_builtin_kernels()
    for klass in type(algorithm).__mro__:
        fn = _FINITE_KERNELS.get(klass)
        if fn is not None:
            return fn
    return None


def has_kernel(algorithm: Any, kind: str) -> bool:
    """Whether ``algorithm`` registers a kernel for request ``kind``."""
    if kind in ("view", "edge"):
        return view_kernel_for(algorithm) is not None
    if kind == "local":
        return local_kernel_for(algorithm) is not None
    if kind == "finite":
        return finite_kernel_for(algorithm) is not None
    return False


# ----------------------------------------------------------------------
# View-kernel execution
# ----------------------------------------------------------------------

def run_view_kernel(algorithm: Any, partition: ClassPartition) -> List[Any]:
    """Compute the per-class output table with the registered view kernel.

    Raises :class:`KernelUnsupported` when there is no kernel, the
    partition came from the Python fallback, or the kernel itself
    declines — the caller then evaluates one representative per class
    the reference way.  A kernel returning the wrong number of entries
    is a bug, not a decline, and raises ``RuntimeError``.
    """
    fn = view_kernel_for(algorithm)
    if fn is None:
        raise KernelUnsupported("no-kernel")
    if partition.class_count == 0:
        return []
    rows = PackedRows.from_partition(partition)
    table = list(fn(algorithm, rows))
    if len(table) != partition.class_count:
        raise RuntimeError(
            f"view kernel for {type(algorithm).__name__} returned "
            f"{len(table)} outputs for {partition.class_count} classes"
        )
    return table


def broadcast_table(table: Sequence[Any], labels: Sequence[int]) -> List[Any]:
    """Fan a per-class output table out to every entity, vectorized.

    Integer tables broadcast through one ``take``; anything else falls
    back to a list comprehension (still one index per entity, no
    algorithm call).
    """
    if table and all(type(x) is int for x in table):
        try:
            return np.asarray(table, dtype=np.int64)[
                np.asarray(labels, dtype=np.int64)
            ].tolist()
        except OverflowError:
            pass
    return [table[c] for c in labels]


# ----------------------------------------------------------------------
# Local (round) kernels
# ----------------------------------------------------------------------

@dataclass
class KernelState:
    """Per-run state threaded through a local kernel's round steps.

    The driver owns ``halted`` / ``halt_rounds`` / ``out`` / ``round``;
    kernels own everything they hang off themselves and mutate the
    driver's arrays only through :meth:`halt`.  ``words[v]`` is the
    64-bit seed the direct engine would have given node ``v``'s private
    RNG (drawn from the master RNG in node order), so
    ``random.Random(words[v])`` reproduces the reference node's random
    stream bit for bit.
    """

    graph: Any
    csr: Any
    n: int
    request: Any
    words: List[int]
    halted: np.ndarray
    halt_rounds: np.ndarray
    out: List[Any]
    round: int = 0
    _arc_src: Optional[np.ndarray] = field(default=None, repr=False)

    @property
    def arc_src(self) -> np.ndarray:
        """Arc source ids aligned with ``csr.indices`` (cached)."""
        if self._arc_src is None:
            self._arc_src = np.repeat(
                np.arange(self.n, dtype=np.int64), self.csr.degrees
            )
        return self._arc_src

    def halt(self, nodes: np.ndarray, outputs: Sequence[Any]) -> None:
        """Halt ``nodes`` (bool mask or index array) with ``outputs``.

        ``outputs`` aligns with the ascending-index order of the
        selected nodes; ndarray outputs are converted to Python
        scalars so reports stay JSON-clean and identity-comparable.
        """
        nodes = np.asarray(nodes)
        if nodes.dtype == np.bool_:
            nodes = np.flatnonzero(nodes)
        self.halted[nodes] = True
        self.halt_rounds[nodes] = self.round
        if isinstance(outputs, np.ndarray):
            outputs = outputs.tolist()
        out = self.out
        for v, value in zip(nodes.tolist(), outputs):
            out[v] = value


class LocalKernel:
    """Base class for local (round) kernels; see ``docs/KERNELS.md``.

    Subclass per algorithm and register with
    :func:`register_local_kernel`.  The driver calls :meth:`supports`
    first (decline here — *before* any side effect), then :meth:`init`
    once, then :meth:`step` once per synchronous round until every node
    has halted.
    """

    def __init__(self, algorithm: Any):
        self.algorithm = algorithm

    def supports(self, request: Any) -> Optional[str]:
        """A decline reason, or ``None`` to accept the run.

        Must be side-effect free: it runs before the master RNG is
        touched, so declining here leaves the fallback's random stream
        identical to a run that never tried the kernel.
        """
        return None

    def init(self, state: KernelState) -> None:
        """Round 0: parse inputs, build arrays, halt degree-0 cases."""
        raise NotImplementedError

    def step(self, state: KernelState) -> None:
        """One synchronous round: gather sends, scatter receives, halt."""
        raise NotImplementedError


def run_local_kernel(
    algorithm: Any, request: Any
) -> Tuple[List[Any], List[Optional[int]], int]:
    """Run a ``local`` request through its registered round kernel.

    Returns ``(outputs, halt_rounds, rounds)`` exactly as the direct
    engine's reference loop would produce them; raises
    :class:`KernelUnsupported` (before consuming any randomness) when
    no kernel applies, and the same ``ValueError`` / ``RuntimeError``
    the reference loop raises for invalid labelings or runaway rounds.
    """
    factory = local_kernel_for(algorithm)
    if factory is None:
        raise KernelUnsupported("no-kernel")
    graph = request.graph
    if not getattr(graph, "is_frozen", False):
        # Round kernels run on the compiled CSR arrays, which only
        # exist for frozen graphs; unfrozen requests take the fallback.
        raise KernelUnsupported("unsupported: graph not frozen")
    n = graph.n
    # Same validation, same messages, same order as the direct loop.
    if request.ids is not None and len(request.ids) != n:
        raise ValueError("ids must have one entry per node")
    if request.inputs is not None and len(request.inputs) != n:
        raise ValueError("inputs must have one entry per node")
    kernel = factory(algorithm)
    reason = kernel.supports(request)
    if reason is not None:
        raise KernelUnsupported(reason)
    master = request.resolved_rng()
    # One 64-bit word per node, in node order — the exact draws the
    # direct loop spends seeding each node's private RNG, so a shared
    # master RNG is left in the identical state afterwards.
    words = [master.getrandbits(64) for _ in range(n)]
    max_rounds = request.max_rounds
    if max_rounds is None:
        max_rounds = 4 * n + 16
    state = KernelState(
        graph=graph,
        csr=graph.csr(),
        n=n,
        request=request,
        words=words,
        halted=np.zeros(n, dtype=bool),
        halt_rounds=np.full(n, -1, dtype=np.int64),
        out=[None] * n,
    )
    kernel.init(state)
    while not state.halted.all():
        state.round += 1
        if state.round > max_rounds:
            active = n - int(state.halted.sum())
            raise RuntimeError(
                f"{algorithm.name}: {active} nodes still running after "
                f"{max_rounds} rounds — runaway algorithm?"
            )
        kernel.step(state)
    rounds = int(state.halt_rounds.max(initial=0))
    halt_rounds: List[Optional[int]] = [int(r) for r in state.halt_rounds]
    return state.out, halt_rounds, rounds
