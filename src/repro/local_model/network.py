"""The synchronous LOCAL execution engine.

:func:`run_local` executes a :class:`~repro.local_model.algorithm.LocalAlgorithm`
(message passing) or a :class:`~repro.local_model.algorithm.ViewAlgorithm`
(mapping from radius-T views) on a port-numbered graph and reports every
node's output together with the exact round each node halted in.

Faithfulness guarantees:

* nodes exchange messages only along edges, one message per port per
  round, delivered synchronously;
* a node that has halted is silent from the next round on;
* per-node randomness is private and derived from independent streams;
* deterministic runs poison the RNG so accidental randomness raises.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..graphs.graph import Graph
from ..graphs.orientation import Orientation
from ..instrumentation.tracer import Tracer, effective_tracer
from .algorithm import LocalAlgorithm, ViewAlgorithm
from .context import NodeContext, UNSET
from .views import gather_view

__all__ = ["ExecutionResult", "run_local", "run_view_algorithm"]


@dataclass
class ExecutionResult:
    """Outcome of a LOCAL execution.

    Attributes
    ----------
    outputs:
        ``outputs[v]`` is node ``v``'s committed output (``UNSET`` if the
        node never produced one).
    halt_rounds:
        ``halt_rounds[v]`` is the round in which node ``v`` halted
        (0 means it halted before any communication); ``None`` if the
        node was still running when the engine stopped.
    rounds:
        Total rounds executed — the algorithm's running time, i.e. the
        maximum halting round.
    """

    outputs: List[Any]
    halt_rounds: List[Optional[int]]
    rounds: int

    def labeling(self) -> Dict[int, Any]:
        """Outputs as a ``{node: label}`` dict (UNSET entries included)."""
        return dict(enumerate(self.outputs))

    def all_halted(self) -> bool:
        """Whether every node halted before the engine gave up."""
        return all(r is not None for r in self.halt_rounds)


def run_local(
    graph: Graph,
    algorithm: LocalAlgorithm,
    ids: Optional[Sequence[int]] = None,
    inputs: Optional[Sequence[Any]] = None,
    orientation: Optional[Orientation] = None,
    rng: Optional[random.Random] = None,
    deterministic: bool = False,
    max_rounds: Optional[int] = None,
    tracer: Optional[Tracer] = None,
) -> ExecutionResult:
    """Run a message-passing algorithm to completion.

    Parameters
    ----------
    graph:
        The network.
    algorithm:
        A stateless :class:`LocalAlgorithm`; per-node state lives in the
        node contexts.
    ids:
        Unique identifiers per node, or ``None`` for an anonymous run.
    inputs:
        Per-node LCL input labels, or ``None``.
    orientation:
        Consistent orientation; if given, every context exposes
        ``port_directions``.
    rng:
        Seed source for the per-node private random streams.
    deterministic:
        If true, node RNGs raise when touched.
    max_rounds:
        Safety valve; defaults to ``4 * n + 16`` (any LOCAL problem is
        solvable in ``O(n)`` rounds, so a correct algorithm that exceeds
        this on a connected graph is looping).
    tracer:
        Optional :class:`~repro.instrumentation.Tracer` observing the
        run (rounds, messages, halts).  ``None`` / ``NullTracer`` cost
        nothing; tracers never alter the execution or its result.

    Raises
    ------
    RuntimeError
        If ``max_rounds`` elapses with nodes still running.
    """
    n = graph.n
    if ids is not None and len(ids) != n:
        raise ValueError("ids must have one entry per node")
    if inputs is not None and len(inputs) != n:
        raise ValueError("inputs must have one entry per node")
    if max_rounds is None:
        max_rounds = 4 * n + 16
    tracer = effective_tracer(tracer)
    master = rng or random.Random(0)
    delta = graph.max_degree()

    contexts: List[NodeContext] = []
    for v in graph.nodes():
        port_dirs = None
        if orientation is not None:
            port_dirs = {}
            for port, u in enumerate(graph.neighbors(v)):
                if orientation.is_labeled(v, u):
                    port_dirs[port] = orientation.direction_at(v, u)
        contexts.append(
            NodeContext(
                degree=graph.degree(v),
                n=n,
                delta=delta,
                identifier=None if ids is None else ids[v],
                input_label=None if inputs is None else inputs[v],
                port_directions=port_dirs,
                rng=random.Random(master.getrandbits(64)),
                forbid_randomness=deterministic,
            )
        )

    if tracer is not None:
        tracer.on_run_start("local", algorithm.name, n)

    halt_rounds: List[Optional[int]] = [None] * n
    for v in graph.nodes():
        algorithm.init(contexts[v])
        if contexts[v].halted:
            halt_rounds[v] = 0
            if tracer is not None:
                tracer.on_halt(v, 0, contexts[v].output)

    rounds = 0
    active = [v for v in graph.nodes() if not contexts[v].halted]
    while active:
        rounds += 1
        if rounds > max_rounds:
            raise RuntimeError(
                f"{algorithm.name}: {len(active)} nodes still running after "
                f"{max_rounds} rounds — runaway algorithm?"
            )
        for v in active:
            contexts[v].round_number = rounds
        if tracer is not None:
            tracer.on_round_start(rounds, len(active))
        outboxes: Dict[int, Dict[int, Any]] = {}
        for v in active:
            msgs = algorithm.send(contexts[v])
            if msgs:
                outboxes[v] = msgs
        inboxes: Dict[int, Dict[int, Any]] = {v: {} for v in active}
        for v, msgs in outboxes.items():
            for port, payload in msgs.items():
                u = graph.endpoint(v, port)
                delivered = not contexts[u].halted
                if delivered:
                    inboxes[u][graph.port_to(u, v)] = payload
                if tracer is not None:
                    tracer.on_message(v, u, port, payload, delivered)
        next_active = []
        for v in active:
            algorithm.receive(contexts[v], inboxes[v])
            if contexts[v].halted:
                halt_rounds[v] = rounds
                if tracer is not None:
                    tracer.on_halt(v, rounds, contexts[v].output)
            else:
                next_active.append(v)
        active = next_active
        if tracer is not None:
            tracer.on_round_end(rounds)

    result = ExecutionResult(
        outputs=[contexts[v].output for v in graph.nodes()],
        halt_rounds=halt_rounds,
        rounds=max((r for r in halt_rounds if r is not None), default=0),
    )
    if tracer is not None:
        tracer.on_run_end(result.rounds)
    return result


def run_view_algorithm(
    graph: Graph,
    algorithm: ViewAlgorithm,
    ids: Optional[Sequence[int]] = None,
    inputs: Optional[Sequence[Any]] = None,
    randomness: Optional[Sequence[Any]] = None,
    orientation: Optional[Orientation] = None,
    tracer: Optional[Tracer] = None,
    view_cache: Optional[Any] = None,
) -> ExecutionResult:
    """Run a view-style T-round algorithm (Section 2.1's functional form).

    Every node's output is ``algorithm.output(B_T(v))``; the running time
    is ``T = algorithm.radius`` by definition.  An optional ``tracer``
    observes one :meth:`~repro.instrumentation.Tracer.on_view` event per
    materialized ball (the view engine's bandwidth analogue).

    ``view_cache`` switches to the canonical-view memoization engine
    (:func:`~repro.local_model.cache.run_view_algorithm_cached`), which
    evaluates each distinct view class once and produces the exact same
    result: pass a :class:`~repro.local_model.cache.ViewCache` to keep
    (and inspect) the memo table, or ``True`` for a fresh per-run cache.
    """
    if view_cache is not None and view_cache is not False:
        from .cache import ViewCache, run_view_algorithm_cached

        return run_view_algorithm_cached(
            graph,
            algorithm,
            ids=ids,
            inputs=inputs,
            randomness=randomness,
            orientation=orientation,
            tracer=tracer,
            cache=None if view_cache is True else view_cache,
        )
    tracer = effective_tracer(tracer)
    if tracer is not None:
        tracer.on_run_start("view", algorithm.name, graph.n)
    outputs = []
    for v in graph.nodes():
        view = gather_view(
            graph,
            v,
            algorithm.radius,
            ids=ids,
            inputs=inputs,
            randomness=randomness,
            orientation=orientation,
        )
        if tracer is not None:
            tracer.on_view(v, view.radius, view.node_count, len(view.edges))
        outputs.append(algorithm.output(view))
    t = algorithm.radius
    if tracer is not None:
        tracer.on_run_end(t)
    return ExecutionResult(
        outputs=outputs, halt_rounds=[t] * graph.n, rounds=t
    )
