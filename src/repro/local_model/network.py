"""The synchronous LOCAL execution entry points.

:func:`run_local` executes a :class:`~repro.local_model.algorithm.LocalAlgorithm`
(message passing) or a :class:`~repro.local_model.algorithm.ViewAlgorithm`
(mapping from radius-T views) on a port-numbered graph and reports every
node's output together with the exact round each node halted in.

Faithfulness guarantees:

* nodes exchange messages only along edges, one message per port per
  round, delivered synchronously;
* a node that has halted is silent from the next round on;
* per-node randomness is private and derived from independent streams;
* deterministic runs poison the RNG so accidental randomness raises.

Both functions are adapters over the unified engine seam
(:func:`repro.core.simulate`): the loops themselves live in
:class:`repro.core.direct.DirectEngine`, and these entry points keep
their historical signatures and result types on top of it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from ..graphs.graph import Graph
from ..graphs.orientation import Orientation
from ..instrumentation.tracer import Tracer
from .algorithm import LocalAlgorithm, ViewAlgorithm

__all__ = ["ExecutionResult", "run_local", "run_view_algorithm"]


@dataclass
class ExecutionResult:
    """Outcome of a LOCAL execution.

    Attributes
    ----------
    outputs:
        ``outputs[v]`` is node ``v``'s committed output (``UNSET`` if the
        node never produced one).
    halt_rounds:
        ``halt_rounds[v]`` is the round in which node ``v`` halted
        (0 means it halted before any communication); ``None`` if the
        node was still running when the engine stopped.
    rounds:
        Total rounds executed — the algorithm's running time, i.e. the
        maximum halting round.
    """

    outputs: List[Any]
    halt_rounds: List[Optional[int]]
    rounds: int

    def labeling(self) -> Dict[int, Any]:
        """Outputs as a ``{node: label}`` dict (UNSET entries included)."""
        return dict(enumerate(self.outputs))

    def all_halted(self) -> bool:
        """Whether every node halted before the engine gave up."""
        return all(r is not None for r in self.halt_rounds)


def run_local(
    graph: Graph,
    algorithm: LocalAlgorithm,
    ids: Optional[Sequence[int]] = None,
    inputs: Optional[Sequence[Any]] = None,
    orientation: Optional[Orientation] = None,
    rng: Optional[random.Random] = None,
    deterministic: bool = False,
    max_rounds: Optional[int] = None,
    tracer: Optional[Tracer] = None,
) -> ExecutionResult:
    """Run a message-passing algorithm to completion.

    Parameters
    ----------
    graph:
        The network.
    algorithm:
        A stateless :class:`LocalAlgorithm`; per-node state lives in the
        node contexts.
    ids:
        Unique identifiers per node, or ``None`` for an anonymous run.
    inputs:
        Per-node LCL input labels, or ``None``.
    orientation:
        Consistent orientation; if given, every context exposes
        ``port_directions``.
    rng:
        Seed source for the per-node private random streams.
    deterministic:
        If true, node RNGs raise when touched.
    max_rounds:
        Safety valve; defaults to ``4 * n + 16`` (any LOCAL problem is
        solvable in ``O(n)`` rounds, so a correct algorithm that exceeds
        this on a connected graph is looping).
    tracer:
        Optional :class:`~repro.instrumentation.Tracer` observing the
        run (rounds, messages, halts).  ``None`` / ``NullTracer`` cost
        nothing; tracers never alter the execution or its result.

    Raises
    ------
    RuntimeError
        If ``max_rounds`` elapses with nodes still running.
    """
    # Imported here, not at module scope: the core package imports
    # sibling local_model modules, so the reverse edge stays lazy.
    from ..core.direct import DirectEngine
    from ..core.engine import SimRequest

    report = DirectEngine().run(
        SimRequest(
            kind="local",
            graph=graph,
            algorithm=algorithm,
            ids=ids,
            inputs=inputs,
            orientation=orientation,
            rng=rng,
            deterministic=deterministic,
            max_rounds=max_rounds,
        ),
        tracer=tracer,
    )
    return report.to_execution_result()


def run_view_algorithm(
    graph: Graph,
    algorithm: ViewAlgorithm,
    ids: Optional[Sequence[int]] = None,
    inputs: Optional[Sequence[Any]] = None,
    randomness: Optional[Sequence[Any]] = None,
    orientation: Optional[Orientation] = None,
    tracer: Optional[Tracer] = None,
    view_cache: Optional[Any] = None,
) -> ExecutionResult:
    """Run a view-style T-round algorithm (Section 2.1's functional form).

    Every node's output is ``algorithm.output(B_T(v))``; the running time
    is ``T = algorithm.radius`` by definition.  An optional ``tracer``
    observes one :meth:`~repro.instrumentation.Tracer.on_view` event per
    materialized ball (the view engine's bandwidth analogue).

    ``view_cache`` switches to the canonical-view memoization engine
    (:class:`~repro.core.cached.CachedEngine`), which evaluates each
    distinct view class once and produces the exact same result: pass a
    :class:`~repro.local_model.cache.ViewCache` to keep (and inspect)
    the memo table, or ``True`` for a fresh per-run cache.
    """
    from ..core.cached import CachedEngine
    from ..core.direct import DirectEngine
    from ..core.engine import SimRequest

    if view_cache is not None and view_cache is not False:
        engine = CachedEngine(
            cache=None if view_cache is True else view_cache
        )
    else:
        engine = DirectEngine()
    report = engine.run(
        SimRequest(
            kind="view",
            graph=graph,
            algorithm=algorithm,
            ids=ids,
            inputs=inputs,
            randomness=randomness,
            orientation=orientation,
        ),
        tracer=tracer,
    )
    return report.to_execution_result()
