"""Algorithm interfaces for the LOCAL simulator.

Two styles are supported, mirroring how the paper treats algorithms:

* :class:`LocalAlgorithm` — genuine synchronous message passing.  In each
  round every active node produces one message per port (:meth:`send`),
  the simulator delivers them, and the node digests what arrived
  (:meth:`receive`).  This is the operational LOCAL model of Section 2.1.

* :class:`ViewAlgorithm` — "a T-round algorithm is a mapping from
  radius-T neighborhoods to outputs" (Section 2.1's closing remark).
  The simulator materializes each node's radius-T view and applies the
  mapping.  Both styles are interchangeable; the runner reports the same
  round counts.
"""

from __future__ import annotations

import abc
from typing import Any, Dict

from .context import NodeContext

__all__ = ["LocalAlgorithm", "ViewAlgorithm"]


class LocalAlgorithm(abc.ABC):
    """A message-passing LOCAL algorithm.

    One instance is shared across nodes (it must be stateless); per-node
    state lives in ``ctx.state``.  A node halts by calling ``ctx.halt``.
    A node that halts during :meth:`init` has running time 0.
    """

    #: Human-readable name used in experiment reports.
    name: str = "local-algorithm"

    def init(self, ctx: NodeContext) -> None:
        """Round-0 setup: runs before any communication."""

    @abc.abstractmethod
    def send(self, ctx: NodeContext) -> Dict[int, Any]:
        """Produce this round's outgoing messages, keyed by port.

        Ports without an entry send nothing.  Called only on active nodes.
        """

    @abc.abstractmethod
    def receive(self, ctx: NodeContext, messages: Dict[int, Any]) -> None:
        """Digest this round's incoming messages, keyed by port.

        Ports whose neighbor sent nothing (or has halted) are absent from
        ``messages``.  The node may call ``ctx.halt`` here.
        """


class ViewAlgorithm(abc.ABC):
    """A T-round algorithm given as a function of radius-T views."""

    name: str = "view-algorithm"

    #: Radius of the views this algorithm consumes.
    radius: int = 0

    @abc.abstractmethod
    def output(self, view: "View") -> Any:  # noqa: F821 - forward ref to views.View
        """Map the center node's radius-T view to its output."""
