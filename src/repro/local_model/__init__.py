"""The LOCAL model: synchronous message passing, views, and edge model."""

from .algorithm import LocalAlgorithm, ViewAlgorithm
from .context import NodeContext, UNSET
from .network import ExecutionResult, run_local, run_view_algorithm
from .views import (
    View,
    gather_view,
    gather_edge_view,
    view_signature,
    edge_view_signature,
)
from .edge_model import (
    EdgeViewAlgorithm,
    EdgeExecutionResult,
    run_edge_view_algorithm,
)
from .cache import (
    CacheStats,
    KeyedCache,
    ViewCache,
    ball_assignment_key,
    run_view_algorithm_cached,
    run_edge_view_algorithm_cached,
)
from .order_invariant import (
    order_projected_view,
    OrderInvariantProjection,
    is_order_invariant,
    order_homogeneous_failure,
)

__all__ = [
    "LocalAlgorithm",
    "ViewAlgorithm",
    "NodeContext",
    "UNSET",
    "ExecutionResult",
    "run_local",
    "run_view_algorithm",
    "View",
    "gather_view",
    "gather_edge_view",
    "view_signature",
    "edge_view_signature",
    "CacheStats",
    "KeyedCache",
    "ViewCache",
    "ball_assignment_key",
    "run_view_algorithm_cached",
    "run_edge_view_algorithm_cached",
    "EdgeViewAlgorithm",
    "EdgeExecutionResult",
    "run_edge_view_algorithm",
    "order_projected_view",
    "OrderInvariantProjection",
    "is_order_invariant",
    "order_homogeneous_failure",
]
