"""Constructive algorithms from the paper and the classical baselines."""

from .cole_vishkin import (
    log_star,
    cv_step,
    cv_iterations_needed,
    is_proper_on_pseudoforest,
    reduce_to_three_colors,
)
from .weak_coloring import (
    WeakTwoColoringResult,
    distance_parity_recoloring,
    choose_successors,
    mis_on_pseudoforest,
    weak_two_coloring_from_weak_coloring,
    weak_two_coloring_from_ids,
    WHITE,
    BLACK,
)
from .naor_stockmeyer import (
    in_degree_labeling,
    order_type_labeling,
    is_distance_k_weak,
    odd_degree_weak_two_coloring,
)
from .pointer_solver import PStarSolution, solve_pstar_partial, solve_pstar
from .proper_coloring import (
    ProperColoringResult,
    smallest_prime_at_least,
    polynomial_step_parameters,
    polynomial_color_reduction_step,
    linial_coloring,
)
from .mis import MISResult, greedy_mis_from_coloring, mis_via_linial, weak_two_coloring_from_mis
from .two_coloring import TwoColoringResult, proper_two_coloring
from .sinkless import SinklessResult, sinkless_from_pstar, sinkless_random_repair
from .brute_force import find_feasible_labeling, exists_feasible, count_feasible
from .edge_coloring import (
    EdgeColoringResult,
    edge_coloring_via_line_graph,
    weak_edge_coloring_via_proper,
)
from .message_passing import (
    ColeVishkinMP,
    LubyMIS,
    GreedySequentialColoring,
    RandomizedWeakColoring,
    FloodLeaderParity,
)
from .homogeneous_solver import (
    HomogeneousSolution,
    solve_with_constant_label,
    solve_weak2_homogeneous,
    solve_all_pstar,
)
from .view_rules import (
    LocalMaximumRule,
    RandomPriorityRule,
    BallSignatureColoring,
    DegreeProfileRule,
    VIEW_RULE_NAMES,
    make_view_rule,
)

__all__ = [
    "log_star",
    "cv_step",
    "cv_iterations_needed",
    "is_proper_on_pseudoforest",
    "reduce_to_three_colors",
    "WeakTwoColoringResult",
    "distance_parity_recoloring",
    "choose_successors",
    "mis_on_pseudoforest",
    "weak_two_coloring_from_weak_coloring",
    "weak_two_coloring_from_ids",
    "WHITE",
    "BLACK",
    "in_degree_labeling",
    "order_type_labeling",
    "is_distance_k_weak",
    "odd_degree_weak_two_coloring",
    "PStarSolution",
    "solve_pstar_partial",
    "solve_pstar",
    "ProperColoringResult",
    "smallest_prime_at_least",
    "polynomial_step_parameters",
    "polynomial_color_reduction_step",
    "linial_coloring",
    "MISResult",
    "greedy_mis_from_coloring",
    "mis_via_linial",
    "weak_two_coloring_from_mis",
    "TwoColoringResult",
    "proper_two_coloring",
    "SinklessResult",
    "sinkless_from_pstar",
    "sinkless_random_repair",
    "find_feasible_labeling",
    "exists_feasible",
    "count_feasible",
    "EdgeColoringResult",
    "edge_coloring_via_line_graph",
    "weak_edge_coloring_via_proper",
    "ColeVishkinMP",
    "LubyMIS",
    "GreedySequentialColoring",
    "RandomizedWeakColoring",
    "FloodLeaderParity",
    "HomogeneousSolution",
    "solve_with_constant_label",
    "solve_weak2_homogeneous",
    "solve_all_pstar",
    "LocalMaximumRule",
    "RandomPriorityRule",
    "BallSignatureColoring",
    "DegreeProfileRule",
    "VIEW_RULE_NAMES",
    "make_view_rule",
]
