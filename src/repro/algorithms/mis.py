"""Maximal independent set from a proper coloring, and MIS-based weak
2-coloring.

Given a proper c-coloring, color classes join the independent set in
turn (a node joins iff none of its neighbors joined earlier) — ``c``
rounds, each class being independent so simultaneous joins are safe.
With Linial's (Delta+1)-coloring this is the classical O(log* n) MIS on
bounded-degree graphs; interpreting the MIS as black nodes is the
"natural way" Lemma 2 turns an MIS into a weak 2-coloring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..graphs.graph import Graph
from .proper_coloring import ProperColoringResult, linial_coloring

__all__ = ["MISResult", "greedy_mis_from_coloring", "mis_via_linial", "weak_two_coloring_from_mis"]


@dataclass
class MISResult:
    """An MIS plus its round accounting."""

    in_mis: List[bool]
    rounds: int


def greedy_mis_from_coloring(
    graph: Graph, colors: Sequence[int], palette: int
) -> MISResult:
    """Color classes 0..palette-1 join greedily, one class per round."""
    in_mis = [False] * graph.n
    blocked = [False] * graph.n
    for cls in range(palette):
        joining = [
            v
            for v in graph.nodes()
            if colors[v] == cls and not blocked[v] and not in_mis[v]
        ]
        for v in joining:
            in_mis[v] = True
        for v in joining:
            for u in graph.neighbors(v):
                blocked[u] = True
    return MISResult(in_mis=in_mis, rounds=palette)


def mis_via_linial(graph: Graph, ids: Sequence[int]) -> MISResult:
    """O(log* n) MIS: Linial coloring, then greedy class joins."""
    coloring = linial_coloring(graph, ids)
    mis = greedy_mis_from_coloring(graph, coloring.colors, graph.max_degree() + 1)
    return MISResult(in_mis=mis.in_mis, rounds=coloring.rounds + mis.rounds)


def weak_two_coloring_from_mis(graph: Graph, in_mis: Sequence[bool]) -> List[int]:
    """Interpret an MIS as a weak 2-coloring (MIS = black = 1).

    Every non-MIS node is dominated (maximality) and every MIS node's
    neighbors are all non-MIS (independence), so on graphs of minimum
    degree 1 this is a weak 2-coloring; 0 extra rounds.
    """
    if graph.min_degree() < 1:
        raise ValueError("weak 2-coloring needs minimum degree 1")
    return [1 if in_mis[v] else 0 for v in graph.nodes()]
