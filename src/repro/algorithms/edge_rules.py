"""Edge-view rules: the edge model's counterpart of ``view_rules``.

The paper's edge-labeling problems (sinkless orientation, edge
coloring) run in the *edge* model: a ``t``-round edge algorithm is a
function from the edge's view ``B_t(e)`` — radius-``t-1`` balls around
both endpoints — to the edge's output label.  No honest constant-round
rule in this module *solves* one of those LCLs (that impossibility is
the paper's point), so none declares ``solves=``; the rules exist to
give the conformance fuzzer and the differential harness registered
``kind="edge"`` entries that exercise
:class:`~repro.core.sharded.ShardedEngine`'s edge path, including its
pickling across pool workers.

Both rules are module-level-callable (no lambdas, no closures) exactly
so the sharded backend can ship them to pool workers — the same
constraint ``tests/differential.py`` documents.
"""

from __future__ import annotations

from typing import Any, Tuple

from ..core.registry import ALGORITHMS, register_algorithm
from ..local_model.edge_model import EdgeViewAlgorithm

__all__ = [
    "edge_profile_output",
    "edge_parity_output",
    "make_edge_rule",
    "EDGE_RULE_NAMES",
]


def edge_profile_output(view: Any) -> Tuple[int, int, int]:
    """Edge output: ball size, edge count, minimum randomness."""
    return (view.node_count, len(view.edges), min(view.randomness))


def edge_parity_output(view: Any) -> int:
    """Anonymous edge output: parity of the ball's node + edge count."""
    return (view.node_count + len(view.edges)) % 2


@register_algorithm("edge-profile", kind="edge", needs="randomness",
                    fuzz_params={"rounds": (1, 2)},
                    domains=(
                        {"graph": "path", "n": (2, 16)},
                        {"graph": "cycle", "n": (3, 16)},
                        {"graph": "star", "leaves": (1, 8)},
                        {"graph": "tree", "delta": (2, 3), "depth": (1, 3)},
                        {"graph": "torus", "rows": (3, 5), "cols": (3, 5)},
                        {"graph": "hypercube", "dim": (1, 4)},
                    ),
                    # NOT label-order invariant: outputs embed the raw
                    # minimum randomness value, not just comparisons.
                    invariances=("determinism", "backend-identity",
                                 "port-permutation"))
def edge_profile(rounds: int = 1) -> EdgeViewAlgorithm:
    """A ``rounds``-round edge rule summarizing the edge's ball."""
    return EdgeViewAlgorithm(
        rounds, edge_profile_output, name=f"edge-profile-t{rounds}"
    )


@register_algorithm("edge-parity", kind="edge", needs="none",
                    fuzz_params={"rounds": (1, 2)},
                    domains=(
                        {"graph": "path", "n": (2, 16)},
                        {"graph": "cycle", "n": (3, 16)},
                        {"graph": "star", "leaves": (1, 8)},
                        {"graph": "tree", "delta": (2, 3), "depth": (1, 3)},
                        {"graph": "torus", "rows": (3, 5), "cols": (3, 5)},
                        {"graph": "hypercube", "dim": (1, 4)},
                    ),
                    invariances=("determinism", "backend-identity",
                                 "port-permutation", "label-order"))
def edge_parity(rounds: int = 1) -> EdgeViewAlgorithm:
    """An anonymous ``rounds``-round edge rule (pure topology)."""
    return EdgeViewAlgorithm(
        rounds, edge_parity_output, name=f"edge-parity-t{rounds}"
    )


#: Registry names accepted by :func:`make_edge_rule`.
EDGE_RULE_NAMES = ("edge-profile", "edge-parity")


def make_edge_rule(name: str, rounds: int = 1) -> EdgeViewAlgorithm:
    """Build a registered edge rule with the given round budget."""
    if name not in EDGE_RULE_NAMES:
        raise ValueError(f"unknown edge rule {name!r} (have {EDGE_RULE_NAMES})")
    return ALGORITHMS.create(name, rounds=rounds)
