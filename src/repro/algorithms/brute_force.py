"""Exact (centralized) solvers for small instances.

The LOCAL model solves everything in O(n) rounds by gathering the whole
graph and brute-forcing; this module is that brute force, used as a
ground-truth oracle in tests and experiments:

* :func:`find_feasible_labeling` — backtracking search for a node
  labeling satisfying a :class:`~repro.lcl.problem.NodeLCL`;
* :func:`exists_feasible` — decision version;
* :func:`count_feasible` — counting version (exponential; tiny inputs).

The searcher re-checks only the ball of the most recently assigned node,
so it prunes correctly for any LCL whose ``check_node`` is monotone
under extension of partial labelings when unlabeled nodes are treated
permissively — which holds for every catalog problem when
``partial=True`` style checks pass.  For safety a full verify runs on
every returned labeling.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from ..graphs.graph import Graph
from ..graphs.orientation import Orientation
from ..lcl.problem import NodeLCL

__all__ = ["find_feasible_labeling", "exists_feasible", "count_feasible"]


def _violates_locally(
    lcl: NodeLCL,
    graph: Graph,
    labeling: List[Any],
    v: int,
    orientation: Optional[Orientation],
) -> bool:
    """Whether the ball of ``v`` already contains a *definitive* violation.

    Only nodes whose entire checking ball is labeled are tested — a
    partial neighborhood may still be completed into a feasible one.
    """
    for u in graph.bfs_distances(v, cutoff=lcl.radius):
        ball_u = graph.bfs_distances(u, cutoff=lcl.radius)
        if any(labeling[w] is None for w in ball_u):
            continue
        if lcl.check_node(graph, labeling, u, orientation) is not None:
            return True
    return False


def find_feasible_labeling(
    graph: Graph,
    lcl: NodeLCL,
    palette: Sequence[Any],
    orientation: Optional[Orientation] = None,
    node_order: Optional[Sequence[int]] = None,
) -> Optional[List[Any]]:
    """A feasible labeling of ``graph`` for ``lcl``, or ``None``.

    Parameters
    ----------
    palette:
        Candidate labels tried at each node, in order.
    node_order:
        Assignment order (defaults to a BFS order, which keeps the
        frontier compact and pruning effective).
    """
    n = graph.n
    if node_order is None:
        if n and graph.is_connected():
            node_order = sorted(graph.nodes(), key=lambda v: graph.bfs_distances(0)[v])
        else:
            node_order = list(graph.nodes())
    labeling: List[Any] = [None] * n

    def backtrack(idx: int) -> bool:
        if idx == len(node_order):
            return lcl.is_feasible(graph, labeling, orientation)
        v = node_order[idx]
        for label in palette:
            labeling[v] = label
            if not _violates_locally(lcl, graph, labeling, v, orientation):
                if backtrack(idx + 1):
                    return True
            labeling[v] = None
        return False

    if backtrack(0):
        return labeling
    return None


def exists_feasible(
    graph: Graph,
    lcl: NodeLCL,
    palette: Sequence[Any],
    orientation: Optional[Orientation] = None,
) -> bool:
    """Whether any feasible labeling exists."""
    return find_feasible_labeling(graph, lcl, palette, orientation) is not None


def count_feasible(
    graph: Graph,
    lcl: NodeLCL,
    palette: Sequence[Any],
    orientation: Optional[Orientation] = None,
    limit: int = 1_000_000,
) -> int:
    """Number of feasible labelings (exponential — tiny graphs only)."""
    n = graph.n
    labeling: List[Any] = [None] * n
    count = 0

    def backtrack(v: int) -> None:
        nonlocal count
        if count >= limit:
            return
        if v == n:
            if lcl.is_feasible(graph, labeling, orientation):
                count += 1
            return
        for label in palette:
            labeling[v] = label
            if not _violates_locally(lcl, graph, labeling, v, orientation):
                backtrack(v + 1)
            labeling[v] = None

    backtrack(0)
    return count
