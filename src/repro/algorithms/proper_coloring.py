"""Linial-style proper (Delta+1)-coloring in O(log* n) rounds.

The classical pipeline [Linial 1992; Goldberg-Plotkin-Shannon 1988]:

1. **Polynomial color reduction.**  Colors are read as polynomials of
   degree ``d`` over a prime field ``F_p`` with ``p >= Delta * d + 1``
   and ``p^(d+1) >=`` (current palette size).  A node's *code* is the
   graph of its polynomial ``{(x, f(x)) : x in F_p}``; two distinct
   polynomials agree on at most ``d`` points, so the union of ``Delta``
   neighbor codes misses at least one of the node's ``p`` points — that
   point (a value below ``p^2``) is the new color.  Each iteration takes
   one round and maps a palette of size ``m`` to one of size
   ``O((Delta log_Delta m)^2)``; iterating reaches a Delta-independent
   palette in O(log* n) rounds.
2. **Greedy class elimination.**  While more than ``Delta + 1`` colors
   remain, the highest class recolors greedily — one round per class,
   constantly many classes for constant Delta.

This is Table 1's row-3 technology from the proper-coloring side (the
paper cites it via [9, 15, 17]); together with
:func:`~repro.algorithms.mis.greedy_mis_from_coloring` it yields the
classical O(log* n) MIS and hence yet another weak 2-coloring route.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..graphs.graph import Graph

__all__ = [
    "ProperColoringResult",
    "smallest_prime_at_least",
    "polynomial_step_parameters",
    "polynomial_color_reduction_step",
    "linial_coloring",
]


@dataclass
class ProperColoringResult:
    """Outcome of the Linial pipeline.

    Attributes
    ----------
    colors:
        A proper coloring with values in ``{0, ..., Delta}``.
    rounds:
        Total rounds: polynomial iterations + class-elimination rounds.
    palette_trajectory:
        Palette-size bound after each polynomial iteration (starts with
        the initial bound) — the doubly-logarithmic collapse is the
        log* mechanism made visible.
    """

    colors: List[int]
    rounds: int
    palette_trajectory: List[int] = field(default_factory=list)


def smallest_prime_at_least(x: int) -> int:
    """The smallest prime >= x (trial division; inputs here are small)."""
    candidate = max(2, x)
    while True:
        if candidate < 4 or all(
            candidate % f for f in range(2, int(candidate**0.5) + 1)
        ):
            return candidate
        candidate += 1


def polynomial_step_parameters(palette: int, delta: int) -> Tuple[int, int]:
    """Choose (degree d, prime p) minimizing the new palette ``p**2``.

    Requires ``p >= delta * d + 1`` and ``p ** (d + 1) >= palette`` so
    that distinct colors map to distinct polynomials and a free point
    always exists.
    """
    if palette < 2:
        raise ValueError("palette must be at least 2")
    best: Optional[Tuple[int, int, int]] = None  # (p*p, d, p)
    d = 1
    while True:
        # Smallest p satisfying both constraints for this degree.
        root = int(palette ** (1.0 / (d + 1)))
        while (root + 1) ** (d + 1) <= palette:
            root += 1
        if root ** (d + 1) < palette:
            root += 1
        p = smallest_prime_at_least(max(delta * d + 1, root))
        if best is None or p * p < best[0]:
            best = (p * p, d, p)
        # Larger d only helps while the root constraint dominates.
        if p == smallest_prime_at_least(delta * d + 1) or d > 64:
            break
        d += 1
    return best[1], best[2]


def polynomial_color_reduction_step(
    graph: Graph, colors: Sequence[int], palette: int, delta: int
) -> Tuple[List[int], int]:
    """One round of polynomial color reduction.

    Returns the new colors (all below the returned new palette bound)
    and that bound ``p ** 2``.
    """
    d, p = polynomial_step_parameters(palette, delta)

    def code(color: int) -> List[int]:
        # Base-p digits of the color are the polynomial's coefficients.
        coeffs = []
        value = color
        for _ in range(d + 1):
            coeffs.append(value % p)
            value //= p
        return [sum(c * pow(x, i, p) for i, c in enumerate(coeffs)) % p for x in range(p)]

    new_colors: List[int] = []
    for v in graph.nodes():
        mine = code(colors[v])
        taken = set()
        for u in graph.neighbors(v):
            their = code(colors[u])
            for x in range(p):
                if their[x] == mine[x]:
                    taken.add(x)
        free = next(x for x in range(p) if x not in taken)
        new_colors.append(free * p + mine[free])
    return new_colors, p * p


def linial_coloring(
    graph: Graph, ids: Sequence[int], id_space: Optional[int] = None
) -> ProperColoringResult:
    """Proper (Delta+1)-coloring in O(log* n) + O_Delta(1) rounds."""
    n = graph.n
    delta = graph.max_degree()
    if delta == 0:
        return ProperColoringResult(colors=[0] * n, rounds=0, palette_trajectory=[1])
    if id_space is None:
        id_space = max(max(ids), n)
    colors = [i - 1 for i in ids]
    palette = id_space
    trajectory = [palette]
    rounds = 0

    # Phase 1: polynomial reduction until the palette stops shrinking.
    while True:
        new_colors, new_palette = polynomial_color_reduction_step(
            graph, colors, palette, delta
        )
        if new_palette >= palette:
            break
        colors, palette = new_colors, new_palette
        trajectory.append(palette)
        rounds += 1

    # Phase 2: eliminate classes Delta+1 .. palette-1 greedily, one per round.
    for cls in range(palette - 1, delta, -1):
        fresh = list(colors)
        for v in graph.nodes():
            if colors[v] == cls:
                used = {colors[u] for u in graph.neighbors(v)}
                fresh[v] = min(c for c in range(delta + 1) if c not in used)
        colors = fresh
        rounds += 1

    for v in graph.nodes():
        for u in graph.neighbors(v):
            if colors[u] == colors[v]:
                raise AssertionError("Linial pipeline produced an improper coloring (bug)")
    return ProperColoringResult(colors=colors, rounds=rounds, palette_trajectory=trajectory)
