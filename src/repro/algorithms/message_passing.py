"""Genuine message-passing LOCAL algorithms.

The functional (view-based) implementations elsewhere in
:mod:`repro.algorithms` are convenient for round accounting; this module
provides the operational counterparts — real
:class:`~repro.local_model.algorithm.LocalAlgorithm` subclasses driven by
the synchronous engine — both as living documentation of the LOCAL model
of Section 2.1 and as cross-checks (tests assert the two styles agree).

* :class:`ColeVishkinMP` — CV color reduction on a pointer pseudoforest,
  messages carrying current colors; halts at a proper 3-coloring.
* :class:`LubyMIS` — Luby's randomized MIS: each round, undecided nodes
  draw priorities; local maxima join, neighbors retire.  O(log n) rounds
  with high probability.
* :class:`GreedySequentialColoring` — the identifier-priority greedy
  (Δ+1)-coloring: a node colors itself once every higher-identifier
  neighbor has; worst case Θ(n) rounds (it is the *slow* baseline the
  log*-round algorithms beat).
* :class:`RandomizedWeakColoring` — anonymous randomized weak
  2-coloring by retry: the constructive contrast to the deterministic
  impossibility on port-symmetric instances.
* :class:`FloodLeaderParity` — leader election by minimum identifier +
  BFS parity: the operational Θ(diameter) proper 2-coloring.
"""

from __future__ import annotations

from typing import Any, Dict

from ..core.registry import register_algorithm
from ..local_model.algorithm import LocalAlgorithm
from ..local_model.context import NodeContext

__all__ = [
    "ColeVishkinMP",
    "LubyMIS",
    "GreedySequentialColoring",
    "RandomizedWeakColoring",
    "FloodLeaderParity",
]


@register_algorithm("cole-vishkin-mp", kind="local", needs_ids=False,
                    params=("color_bits",))
class ColeVishkinMP(LocalAlgorithm):
    """Cole-Vishkin on a pseudoforest, as synchronous message passing.

    Inputs (per node, via ``input_label``): ``(successor_port, color)``
    where ``color`` is an integer below ``2 ** color_bits`` and the
    initial coloring is proper along successor pointers.  All nodes must
    share ``color_bits`` (constructor argument), from which each node
    derives the same iteration schedule locally.

    Rounds: ``cv_iterations_needed(color_bits)`` CV steps, then three
    shift-down + recolor-class pairs, exactly like the functional
    :func:`~repro.algorithms.cole_vishkin.reduce_to_three_colors`.
    """

    name = "cole-vishkin-mp"

    def __init__(self, color_bits: int):
        from .cole_vishkin import cv_iterations_needed

        self.color_bits = color_bits
        self.cv_rounds = cv_iterations_needed(color_bits)
        # Schedule: cv_rounds CV steps, then (shift, recolor) for 5, 4, 3.
        self.total_rounds = self.cv_rounds + 6

    def init(self, ctx: NodeContext) -> None:
        successor_port, color = ctx.input_label
        ctx.state["succ"] = successor_port
        ctx.state["color"] = color

    def send(self, ctx: NodeContext) -> Dict[int, Any]:
        # Everyone broadcasts its color; receivers pick what they need.
        return {port: ctx.state["color"] for port in range(ctx.degree)}

    def receive(self, ctx: NodeContext, messages: Dict[int, Any]) -> None:
        from .cole_vishkin import cv_step

        rnd = ctx.round_number
        succ_color = messages.get(ctx.state["succ"])
        if rnd <= self.cv_rounds:
            ctx.state["color"] = cv_step(ctx.state["color"], succ_color)
        else:
            phase = rnd - self.cv_rounds  # 1..6
            if phase % 2 == 1:
                # Shift-down: adopt the successor's color.
                ctx.state["color"] = succ_color
            else:
                target = {2: 5, 4: 4, 6: 3}[phase]
                if ctx.state["color"] == target:
                    used = set(messages.values())
                    ctx.state["color"] = min(c for c in (0, 1, 2) if c not in used)
        if rnd == self.total_rounds:
            ctx.halt(ctx.state["color"])


@register_algorithm("luby-mis", kind="local", needs_ids=True,
                    solves=("mis", {}),
                    domains=(
                        {"graph": "path", "n": (2, 16)},
                        {"graph": "cycle", "n": (3, 16)},
                        {"graph": "star", "leaves": (1, 8)},
                        {"graph": "clique", "n": (2, 8)},
                        {"graph": "caterpillar", "spine": (1, 6),
                         "legs_per_node": (0, 3)},
                        {"graph": "tree", "delta": (2, 3), "depth": (1, 3)},
                        {"graph": "torus", "rows": (3, 5), "cols": (3, 5)},
                        {"graph": "hypercube", "dim": (1, 4)},
                    ),
                    invariances=("determinism", "backend-identity",
                                 "port-permutation", "label-order"))
class LubyMIS(LocalAlgorithm):
    """Luby's randomized maximal independent set.

    Each phase costs two rounds: (1) undecided nodes draw and exchange
    random priorities; local maxima mark themselves IN; (2) IN nodes
    announce, neighbors mark OUT.  A node halts when decided; isolated
    or fully-decided neighborhoods resolve immediately.  Output: True
    iff in the MIS.
    """

    name = "luby-mis"

    def init(self, ctx: NodeContext) -> None:
        ctx.state["status"] = "undecided"
        ctx.state["active_ports"] = set(range(ctx.degree))
        if ctx.degree == 0:
            ctx.halt(True)

    def send(self, ctx: NodeContext) -> Dict[int, Any]:
        phase = (ctx.round_number - 1) % 2
        if phase == 0:
            ctx.state["priority"] = ctx.rng.getrandbits(48)
            return {
                port: ("prio", ctx.state["priority"])
                for port in ctx.state["active_ports"]
            }
        return {
            port: ("decision", ctx.state["status"])
            for port in ctx.state["active_ports"]
        }

    def receive(self, ctx: NodeContext, messages: Dict[int, Any]) -> None:
        phase = (ctx.round_number - 1) % 2
        if phase == 0:
            prios = [p for kind, p in messages.values() if kind == "prio"]
            # Halted/decided neighbors no longer compete.
            if all(ctx.state["priority"] > p for p in prios):
                ctx.state["status"] = "in"
            return
        # Decision phase.
        for port, (kind, status) in messages.items():
            if kind == "decision" and status == "in":
                ctx.state["status"] = "out"
        for port, (kind, status) in list(messages.items()):
            if kind == "decision" and status in ("in", "out"):
                ctx.state["active_ports"].discard(port)
        if ctx.state["status"] == "in":
            ctx.halt(True)
        elif ctx.state["status"] == "out":
            ctx.halt(False)
        elif not ctx.state["active_ports"]:
            # All neighbors decided OUT and nobody dominates: join.
            ctx.state["status"] = "in"
            ctx.halt(True)


@register_algorithm("greedy-sequential-coloring", kind="local", needs_ids=True,
                    solves=("proper-coloring",
                            {"colors": "auto:max-degree+1"}),
                    domains=(
                        {"graph": "path", "n": (2, 16)},
                        {"graph": "cycle", "n": (3, 16)},
                        {"graph": "star", "leaves": (1, 8)},
                        {"graph": "clique", "n": (2, 6)},
                        {"graph": "caterpillar", "spine": (1, 6),
                         "legs_per_node": (0, 3)},
                        {"graph": "tree", "delta": (2, 3), "depth": (1, 3)},
                        {"graph": "torus", "rows": (3, 5), "cols": (3, 5)},
                        {"graph": "hypercube", "dim": (1, 4)},
                    ),
                    invariances=("determinism", "backend-identity",
                                 "port-permutation", "label-order"))
class GreedySequentialColoring(LocalAlgorithm):
    """Greedy (Delta+1)-coloring by identifier priority.

    A node commits to the smallest color unused by its already-committed
    neighbors once every neighbor with a larger identifier has
    committed.  Correct on any graph; Θ(n) rounds in the worst case
    (a path with increasing identifiers) — the slow baseline that makes
    the log* algorithms' value visible.
    """

    name = "greedy-sequential-coloring"

    def init(self, ctx: NodeContext) -> None:
        ctx.state["neighbor_colors"] = {}
        ctx.state["neighbor_ids"] = {}
        ctx.state["color"] = None

    def send(self, ctx: NodeContext) -> Dict[int, Any]:
        return {
            port: (ctx.identifier, ctx.state["color"]) for port in range(ctx.degree)
        }

    def receive(self, ctx: NodeContext, messages: Dict[int, Any]) -> None:
        for port, (identifier, color) in messages.items():
            ctx.state["neighbor_ids"][port] = identifier
            if color is not None:
                ctx.state["neighbor_colors"][port] = color
        if ctx.state["color"] is not None:
            # Linger one round so neighbors learn the committed color.
            ctx.halt(ctx.state["color"])
            return
        higher = [
            port
            for port, identifier in ctx.state["neighbor_ids"].items()
            if identifier > ctx.identifier
        ]
        known = set(ctx.state["neighbor_ids"])
        if len(known) == ctx.degree and all(
            port in ctx.state["neighbor_colors"] for port in higher
        ):
            used = set(ctx.state["neighbor_colors"].values())
            ctx.state["color"] = min(c for c in range(ctx.degree + 1) if c not in used)


@register_algorithm("randomized-weak-coloring", kind="local", needs_ids=False,
                    solves=("weak-coloring", {"colors": 2}),
                    domains=(
                        {"graph": "path", "n": (2, 16)},
                        {"graph": "cycle", "n": (3, 16)},
                        {"graph": "star", "leaves": (1, 8)},
                        {"graph": "clique", "n": (2, 8)},
                        {"graph": "caterpillar", "spine": (1, 6),
                         "legs_per_node": (0, 3)},
                        {"graph": "tree", "delta": (2, 3), "depth": (1, 3)},
                        {"graph": "torus", "rows": (3, 5), "cols": (3, 5)},
                        {"graph": "hypercube", "dim": (1, 4)},
                    ),
                    invariances=("determinism", "backend-identity",
                                 "port-permutation"))
class RandomizedWeakColoring(LocalAlgorithm):
    """Anonymous randomized weak 2-coloring by retry.

    Round structure: every undecided node draws a uniform color and
    announces it; a node finalizes as soon as its current color differs
    from some neighbor's current-or-final color.  On symmetric
    anonymous instances — where *deterministic* algorithms are provably
    constant and fail (see
    :func:`repro.graphs.generators.symmetric_cycle`) — randomness
    breaks the symmetry in O(log n) rounds with high probability: each
    round, an undecided node survives only if every neighbor matched
    it, probability at most 1/2.

    This is the introduction's opening observation made operational:
    identical deterministic nodes stay identical forever; random bits
    are the other way out.
    """

    name = "randomized-weak-coloring"

    def init(self, ctx: NodeContext) -> None:
        if ctx.degree == 0:
            ctx.halt(0)  # isolated nodes are vacuously weakly colored
            return
        ctx.state["color"] = ctx.rng.randrange(2)
        ctx.state["final"] = False
        ctx.state["final_neighbors"] = {}  # port -> frozen color

    def send(self, ctx: NodeContext) -> Dict[int, Any]:
        return {
            port: (ctx.state["color"], ctx.state["final"])
            for port in range(ctx.degree)
        }

    def receive(self, ctx: NodeContext, messages: Dict[int, Any]) -> None:
        if ctx.state["final"]:
            # Linger one round so neighbors saw the final flag; then stop.
            ctx.halt(ctx.state["color"])
            return
        for port, (color, is_final) in messages.items():
            if is_final:
                ctx.state["final_neighbors"][port] = color
        mine = ctx.state["color"]
        # Safe freezes: (a) a *final* neighbor with a differing color is a
        # permanent witness; (b) a differing *active* neighbor freezes
        # too in this very round (it sees our differing color — the edge
        # is bichromatic from both ends), so both colors lock together.
        frozen_witness = any(
            c != mine for c in ctx.state["final_neighbors"].values()
        )
        active_witness = any(
            color != mine
            for port, (color, is_final) in messages.items()
            if not is_final and port not in ctx.state["final_neighbors"]
        )
        if frozen_witness or active_witness:
            ctx.state["final"] = True
        else:
            ctx.state["color"] = ctx.rng.randrange(2)


@register_algorithm("flood-leader-parity", kind="local", needs_ids=True,
                    solves=("proper-coloring", {"colors": 2}),
                    # Bipartite-only domains: a 2-coloring exists exactly
                    # on even cycles/tori, trees, and hypercubes.
                    domains=(
                        {"graph": "path", "n": (2, 16)},
                        {"graph": "cycle", "n": (4, 16, 2)},
                        {"graph": "star", "leaves": (1, 8)},
                        {"graph": "caterpillar", "spine": (1, 6),
                         "legs_per_node": (0, 3)},
                        {"graph": "tree", "delta": (2, 3), "depth": (1, 3)},
                        {"graph": "torus", "rows": (4, 6, 2),
                         "cols": (4, 6, 2)},
                        {"graph": "hypercube", "dim": (1, 4)},
                    ),
                    invariances=("determinism", "backend-identity",
                                 "port-permutation", "label-order"))
class FloodLeaderParity(LocalAlgorithm):
    """Proper 2-coloring: flood the minimum identifier with distances.

    Every node tracks the smallest identifier heard and its hop
    distance; after ``n`` rounds (a safe horizon all nodes share) the
    minimum has stabilized everywhere and each node outputs its distance
    parity.  Θ(n) horizon for simplicity; the *information* arrives in
    eccentricity rounds, which the functional solver accounts.
    """

    name = "flood-leader-parity"

    def init(self, ctx: NodeContext) -> None:
        ctx.state["best"] = (ctx.identifier, 0)

    def send(self, ctx: NodeContext) -> Dict[int, Any]:
        return {port: ctx.state["best"] for port in range(ctx.degree)}

    def receive(self, ctx: NodeContext, messages: Dict[int, Any]) -> None:
        for identifier, dist in messages.values():
            candidate = (identifier, dist + 1)
            if candidate < ctx.state["best"]:
                ctx.state["best"] = candidate
        if ctx.round_number >= ctx.n:
            ctx.halt(ctx.state["best"][1] % 2)
