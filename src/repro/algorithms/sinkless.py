"""Sinkless orientation — Table 1's exponential-separation row.

Sinkless orientation (every node of degree >= 3 gets an outgoing edge)
has deterministic complexity Theta(log n) and randomized complexity
Theta(log log n) on bounded-degree graphs [Brandt et al. 2016; Ghaffari
& Su 2017; Chang-Kopelowitz-Pettie 2016].  This module provides:

* :func:`sinkless_from_pstar` — the deterministic O(log n) route this
  paper makes natural: solve the pointer problem P* (Lemma 17) and
  orient every node's pointer edge outward.  P*-happiness condition (4)
  (no backtracking) guarantees the two endpoints never fight over an
  edge's direction, and every degree-Delta node points somewhere, so on
  graphs whose degree->=3 nodes all have degree Delta (e.g. the interior
  of a Delta-regular tree) no sink remains.

* :func:`sinkless_random_repair` — the randomized baseline: orient
  uniformly at random, then let sinks push one incident edge outward
  per round until none remain.  On trees the expected repair time is
  small (pushes drift toward leaves); we *measure* it rather than claim
  the Theta(log log n) bound, whose LLL-based algorithm is out of scope
  (see EXPERIMENTS.md for the substitution note).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..graphs.graph import Graph, Edge, edge_key
from .pointer_solver import solve_pstar

__all__ = ["SinklessResult", "sinkless_from_pstar", "sinkless_random_repair"]


@dataclass
class SinklessResult:
    """An orientation (edge key -> head node) plus round accounting."""

    orientation: Dict[Edge, int]
    rounds: int

    def sinks(self, graph: Graph) -> List[int]:
        """Nodes of degree >= 3 with no outgoing edge."""
        out = []
        for v in graph.nodes():
            if graph.degree(v) < 3:
                continue
            if all(self.orientation[edge_key(v, u)] == v for u in graph.neighbors(v)):
                out.append(v)
        return out


def sinkless_from_pstar(graph: Graph, delta: int, ids: Sequence[int]) -> SinklessResult:
    """Deterministic sinkless orientation via P* pointer chains.

    Every node's pointer edge is oriented outward; unclaimed edges point
    toward the larger identifier.  Correct whenever every degree->=3
    node has degree exactly ``delta`` (low-degree nodes below 3 are
    unconstrained; *intermediate* degrees would need the homogeneous
    fallback, which the caller can detect from the returned sinks).
    """
    solution = solve_pstar(graph, delta, ids)
    orientation: Dict[Edge, int] = {}
    for u, v in graph.edges():
        orientation[edge_key(u, v)] = v if ids[v] > ids[u] else u
    for v in graph.nodes():
        label = solution.labels[v]
        if label is not None and label.p is not None:
            orientation[edge_key(v, label.p)] = label.p
    return SinklessResult(orientation=orientation, rounds=solution.rounds)


def sinkless_random_repair(
    graph: Graph,
    rng: Optional[random.Random] = None,
    max_rounds: int = 10_000,
) -> SinklessResult:
    """Randomized sinkless orientation: random start, then sink pushes.

    Round 0 orients every edge by a fair coin.  In each subsequent round
    every sink flips one uniformly-random incident edge outward (flips
    are simultaneous; an edge flipped by both endpoints settles by the
    larger node index, mimicking a symmetric tie-break).  Rounds until
    no sink remains is the measured complexity.

    Raises
    ------
    RuntimeError
        If sinks persist beyond ``max_rounds`` (never observed on the
        tree/torus families this library targets).
    """
    rng = rng or random.Random(0)
    orientation: Dict[Edge, int] = {}
    for u, v in graph.edges():
        orientation[edge_key(u, v)] = v if rng.random() < 0.5 else u

    result = SinklessResult(orientation=orientation, rounds=0)
    rounds = 0
    while True:
        sinks = result.sinks(graph)
        if not sinks:
            break
        rounds += 1
        if rounds > max_rounds:
            raise RuntimeError(f"sink repair did not converge in {max_rounds} rounds")
        flips: Dict[Edge, int] = {}
        for v in sinks:
            u = graph.neighbors(v)[rng.randrange(graph.degree(v))]
            key = edge_key(v, u)
            # Simultaneous flips on one edge settle toward the larger node.
            if key in flips:
                flips[key] = max(flips[key], u)
            else:
                flips[key] = u
        orientation.update(flips)
        result = SinklessResult(orientation=orientation, rounds=rounds)
    result.rounds = rounds
    return result
