"""Proper edge coloring via the line graph.

A proper edge c-coloring of G is a proper node c-coloring of L(G), and
``Delta(L(G)) <= 2 Delta(G) - 2``, so Linial's pipeline on the line
graph yields a ``(2 Delta - 1)``-edge-coloring in O(log* n) rounds — a
Table-1-adjacent classic (edge coloring with >= 3 colors is the
introduction's example of a *local* cycle problem).

Locality note: one round on L(G) is simulable in one round on G (the
two endpoints of an edge jointly know everything incident to it), so
the L(G) round count carries over up to a constant factor; we report
the L(G) rounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..graphs.graph import Edge, Graph
from ..graphs.transforms import line_graph
from .proper_coloring import linial_coloring

__all__ = ["EdgeColoringResult", "edge_coloring_via_line_graph", "weak_edge_coloring_via_proper"]


@dataclass
class EdgeColoringResult:
    """A proper edge coloring plus round accounting."""

    colors: Dict[Edge, int]
    palette: int
    rounds: int


def edge_coloring_via_line_graph(graph: Graph, ids: Sequence[int]) -> EdgeColoringResult:
    """Proper ``(2 Delta - 1)``-edge-coloring in O(log* n) L(G)-rounds.

    Line-graph identifiers derive locally from endpoint identifiers
    (``id_u * (max_id + 1) + id_v`` with ``id_u > id_v``), keeping the
    whole computation inside the LOCAL model.
    """
    if graph.m == 0:
        return EdgeColoringResult(colors={}, palette=1, rounds=0)
    lg, edges = line_graph(graph)
    base = max(ids) + 1
    lg_ids: List[int] = []
    for u, v in edges:
        hi, lo = max(ids[u], ids[v]), min(ids[u], ids[v])
        lg_ids.append(hi * base + lo)
    out = linial_coloring(lg, lg_ids, id_space=base * base)
    colors = {edge: out.colors[i] for i, edge in enumerate(edges)}
    return EdgeColoringResult(
        colors=colors, palette=lg.max_degree() + 1, rounds=out.rounds
    )


def weak_edge_coloring_via_proper(graph: Graph, ids: Sequence[int]) -> EdgeColoringResult:
    """A weak edge coloring (Section 5's problem) on any oriented graph.

    A *proper* edge coloring makes all edges at a node pairwise distinct,
    so every complete dimension's two edges differ — a weak edge coloring
    for any consistent orientation, with palette ``2 Delta - 1`` and
    O(log* n) rounds.  This is the constructive upper bound complementing
    the speedup engine's use of weak edge colorings as an *intermediate*
    object: the problem itself is easy at Theta(log* n); the lower-bound
    machinery is about what happens strictly faster.
    """
    return edge_coloring_via_line_graph(graph, ids)
