"""The Lemma 2 reduction: distance-k weak c-coloring  ->  weak 2-coloring.

This is the paper's minimality engine.  Given *any* distance-k weak
c-coloring (constants ``k`` and ``c``), it produces a weak 2-coloring in
O(1) additional rounds:

1. **Distance-parity recoloring** (k rounds).  Each node ``v`` finds the
   distance ``D(v)`` to the closest differently-colored node and outputs
   ``phi'(v) = (phi(v), D(v) mod 2)``.  If ``v`` had no differing
   neighbor, its neighbor ``w`` on the shortest path toward the closest
   differing node has ``D(w) = D(v) - 1``, so the parity bit separates
   them: ``phi'`` is a (distance-1) weak 2c-coloring.
2. **Pseudoforest formation** (1 round).  Each node points at a neighbor
   with a different ``phi'`` (smallest color, then smallest port).
3. **Cole-Vishkin reduction** (O(log* c) rounds).  The proper coloring
   along the pointers is reduced to 3 colors
   (:func:`~repro.algorithms.cole_vishkin.reduce_to_three_colors`).
4. **Greedy MIS** (3 rounds).  Color classes join the independent set in
   turn; the result is an MIS *of the pseudoforest*.
5. **Weak 2-coloring** (0 rounds).  MIS nodes turn black, the rest
   white: every black node's successor is white (independence), every
   white node has a black pseudoforest neighbor (maximality), and all
   pseudoforest edges are graph edges.

The same pipeline run with ``phi = identifiers`` and ``k = 1`` is the
classical Theta(log* n) weak 2-coloring algorithm (Table 1, row 3): the
identifiers are trivially a distance-1 weak n-coloring wherever degrees
are positive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..graphs.graph import Graph
from .cole_vishkin import reduce_to_three_colors

__all__ = [
    "WeakTwoColoringResult",
    "distance_parity_recoloring",
    "choose_successors",
    "mis_on_pseudoforest",
    "weak_two_coloring_from_weak_coloring",
    "weak_two_coloring_from_ids",
]

#: Output colors of the final weak 2-coloring.
WHITE, BLACK = 0, 1


@dataclass
class WeakTwoColoringResult:
    """Outcome of the Lemma 2 pipeline.

    Attributes
    ----------
    labels:
        The weak 2-coloring: ``labels[v]`` is ``BLACK`` (MIS member) or
        ``WHITE``.
    rounds:
        Total communication rounds consumed by all phases.
    phase_rounds:
        Per-phase round accounting (keys: ``recolor``, ``pointer``,
        ``cole_vishkin``, ``mis``).
    successor:
        The pseudoforest built in phase 2 (useful for inspection).
    """

    labels: List[int]
    rounds: int
    phase_rounds: Dict[str, int] = field(default_factory=dict)
    successor: Optional[List[int]] = None


def distance_parity_recoloring(
    graph: Graph, phi: Sequence[int], k: int
) -> Tuple[List[Tuple[int, int]], int]:
    """Phase 1: ``phi'(v) = (phi(v), D(v) mod 2)``.

    ``D(v)`` is the distance to the closest node with a different
    ``phi``-color; the input must be a distance-k weak coloring, so
    ``D(v) <= k`` — otherwise this raises.

    Returns the new labels and the round cost (``k``).
    """
    out: List[Tuple[int, int]] = []
    for v in graph.nodes():
        dist = graph.bfs_distances(v, cutoff=k)
        d_best: Optional[int] = None
        for u, d in dist.items():
            if u != v and phi[u] != phi[v] and (d_best is None or d < d_best):
                d_best = d
        if d_best is None:
            raise ValueError(
                f"node {v} has no differing color within distance {k}: "
                "input is not a distance-k weak coloring"
            )
        out.append((phi[v], d_best % 2))
    return out, k


def choose_successors(graph: Graph, labels: Sequence[Tuple[int, int]]) -> List[int]:
    """Phase 2: point at a differently-labeled neighbor.

    Ties break toward the smallest label, then the smallest port — any
    deterministic local rule works.  Raises if some node has no
    differing neighbor (i.e. the input is not a weak coloring).
    """
    successor: List[int] = []
    for v in graph.nodes():
        candidates = [
            (labels[u], port, u)
            for port, u in enumerate(graph.neighbors(v))
            if labels[u] != labels[v]
        ]
        if not candidates:
            raise ValueError(f"node {v} has no differing neighbor: not a weak coloring")
        successor.append(min(candidates)[2])
    return successor


def mis_on_pseudoforest(
    successor: Sequence[int], colors3: Sequence[int]
) -> Tuple[List[bool], int]:
    """Phase 4: greedy MIS over the pseudoforest, by color class.

    Runs 3 rounds; in round ``j`` every so-far-undominated node of color
    ``j`` joins.  The 3-coloring is proper on the pseudoforest, so
    joining nodes of one class are pairwise non-adjacent.
    """
    n = len(successor)
    neighbors: List[set] = [set() for _ in range(n)]
    for v, s in enumerate(successor):
        neighbors[v].add(s)
        neighbors[s].add(v)
    in_mis = [False] * n
    blocked = [False] * n
    for j in (0, 1, 2):
        joining = [
            v for v in range(n) if colors3[v] == j and not blocked[v] and not in_mis[v]
        ]
        for v in joining:
            in_mis[v] = True
        for v in joining:
            for u in neighbors[v]:
                blocked[u] = True
    return in_mis, 3


def weak_two_coloring_from_weak_coloring(
    graph: Graph,
    phi: Sequence[int],
    k: int,
    c: int,
) -> WeakTwoColoringResult:
    """Run the full Lemma 2 pipeline.

    Parameters
    ----------
    graph:
        Any graph of minimum degree >= 1.
    phi:
        A distance-``k`` weak coloring with colors in ``{0, ..., c-1}``.
    k, c:
        Its parameters (both O(1) in the paper's setting; the round
        count returned is ``k + O(log* c)``).

    Raises
    ------
    ValueError
        If ``phi`` is not actually a distance-k weak c-coloring.
    """
    if graph.min_degree() < 1:
        raise ValueError("weak 2-coloring needs minimum degree 1")
    if any(not 0 <= phi[v] < c for v in graph.nodes()):
        raise ValueError(f"phi uses colors outside 0..{c - 1}")

    phi_prime, r1 = distance_parity_recoloring(graph, phi, k)
    successor = choose_successors(graph, phi_prime)
    r2 = 1

    # Encode (color, parity) into integers below 2c for Cole-Vishkin.
    packed = [col * 2 + par for col, par in phi_prime]
    bits = max(1, (2 * c - 1).bit_length())
    colors3, r3 = reduce_to_three_colors(packed, successor, bits)

    in_mis, r4 = mis_on_pseudoforest(successor, colors3)
    labels = [BLACK if m else WHITE for m in in_mis]
    return WeakTwoColoringResult(
        labels=labels,
        rounds=r1 + r2 + r3 + r4,
        phase_rounds={"recolor": r1, "pointer": r2, "cole_vishkin": r3, "mis": r4},
        successor=successor,
    )


def weak_two_coloring_from_ids(
    graph: Graph, ids: Sequence[int], id_space: Optional[int] = None
) -> WeakTwoColoringResult:
    """The Theta(log* n) weak 2-coloring from identifiers (Table 1, row 3).

    Unique identifiers are a distance-1 weak coloring with palette size
    ``id_space`` (default ``n**2``); the pipeline's Cole-Vishkin phase
    then costs O(log* n) rounds and dominates the running time.
    """
    if id_space is None:
        id_space = max(graph.n**2, 2)
    if any(not 1 <= i <= id_space for i in ids):
        raise ValueError(f"ids must lie in 1..{id_space}")
    # Shift ids to 0-based colors for the pipeline.
    phi = [i - 1 for i in ids]
    return weak_two_coloring_from_weak_coloring(graph, phi, k=1, c=id_space)
