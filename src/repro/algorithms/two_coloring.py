"""Proper 2-coloring — the paper's global / Theta(log n)-on-trees row.

Proper 2-coloring of a bipartite graph is inherently global: the parity
of a node is determined by the parity of every other node in its
component, so any LOCAL algorithm needs Theta(diameter) rounds.  On the
balanced Delta-regular trees the paper's Table 1 measures against, the
diameter is Theta(log_Delta n) — which is precisely why 2-coloring
exemplifies the Theta(log n) homogeneous class.

The implementation is the canonical leader-based algorithm: the minimum
identifier floods the component (eccentricity rounds), and every node
outputs its BFS-distance parity relative to the leader.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..graphs.graph import Graph

__all__ = ["TwoColoringResult", "proper_two_coloring"]


@dataclass
class TwoColoringResult:
    """A proper 2-coloring plus its round accounting."""

    colors: List[int]
    rounds: int
    leader: int


def proper_two_coloring(graph: Graph, ids: Sequence[int]) -> TwoColoringResult:
    """2-color a connected bipartite graph in Theta(diameter) rounds.

    The round count is the number of rounds until the last node can
    commit: a node must have heard from every other node to be certain
    of the global minimum identifier, so node ``v`` halts after
    ``ecc(v)`` rounds and the algorithm finishes after ``diameter``
    rounds.

    Raises
    ------
    ValueError
        If the graph is disconnected or not bipartite.
    """
    if not graph.is_connected():
        raise ValueError("2-coloring solver requires a connected graph")
    leader = min(graph.nodes(), key=lambda v: ids[v])
    dist = graph.bfs_distances(leader)
    colors = [0] * graph.n
    for v in graph.nodes():
        colors[v] = dist[v] % 2
    for u, w in graph.edges():
        if colors[u] == colors[w]:
            raise ValueError("graph is not bipartite; proper 2-coloring impossible")
    rounds = graph.diameter()
    return TwoColoringResult(colors=colors, rounds=rounds, leader=leader)
