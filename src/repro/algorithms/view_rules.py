"""View-rule algorithms: LOCAL algorithms written directly as view maps.

Section 2's normal form says a t-round algorithm *is* a function from
radius-t views to outputs.  The message-passing algorithms elsewhere in
this package earn that form by simulation; the rules here are born in
it: each is a :class:`~repro.local_model.ViewAlgorithm` whose ``output``
reads one :class:`~repro.local_model.View` and returns a color.

They are chosen to exercise every slot of the view-cache key
(:func:`~repro.local_model.view_signature`):

* :class:`LocalMaximumRule` — identifier-driven (the ``ids`` slot);
* :class:`RandomPriorityRule` — randomness-driven (the ``randomness``
  slot);
* :class:`BallSignatureColoring` — pure topology, hashed with a
  *process-stable* digest (anonymous graphs; the ``rows`` slot);
* :class:`DegreeProfileRule` — pure topology with a structured output
  (degrees and distances).

All four are deterministic functions of the view, so a cached run
(compute each distinct view class once, broadcast the output) must be
bit-identical to the direct run — the invariant
``tests/test_differential.py`` checks over the full grid.

Each rule is registered in :data:`repro.core.registry.ALGORITHMS` with
``kind="view"`` and a ``needs`` metadata slot ("ids" / "randomness" /
"none"), which is how the experiment runner's ``view-algorithm`` cells
resolve names; :func:`make_view_rule` is a thin compatibility wrapper
over that registry.
"""

from __future__ import annotations

import hashlib
from typing import Tuple

from ..core.registry import ALGORITHMS, register_algorithm
from ..local_model.algorithm import ViewAlgorithm
from ..local_model.views import View

__all__ = [
    "LocalMaximumRule",
    "RandomPriorityRule",
    "BallSignatureColoring",
    "DegreeProfileRule",
    "VIEW_RULE_NAMES",
    "make_view_rule",
]


@register_algorithm("local-max", kind="view", needs="ids",
                    fuzz_params={"radius": (1, 2)},
                    domains=(
                        {"graph": "path", "n": (2, 16)},
                        {"graph": "cycle", "n": (3, 16)},
                        {"graph": "star", "leaves": (1, 8)},
                        {"graph": "clique", "n": (2, 8)},
                        {"graph": "tree", "delta": (2, 3), "depth": (1, 3)},
                        {"graph": "torus", "rows": (3, 5), "cols": (3, 5)},
                        {"graph": "hypercube", "dim": (1, 4)},
                    ),
                    invariances=("determinism", "backend-identity",
                                 "port-permutation", "label-order"))
class LocalMaximumRule(ViewAlgorithm):
    """Output 1 iff the center's identifier beats everyone in its ball.

    With unique identifiers the 1-nodes of any radius are pairwise
    non-adjacent (two adjacent local maxima would each have to exceed
    the other), so the rule marks an independent set.  Requires ``ids``.
    """

    def __init__(self, radius: int = 1):
        if radius < 1:
            raise ValueError("a radius-0 node has nobody to compare against")
        self.radius = radius
        self.name = f"local-max-r{radius}"

    def output(self, view: View) -> int:
        if view.identifiers is None:
            raise ValueError(f"{self.name} needs identifiers")
        mine = view.identifiers[view.center]
        return (
            1
            if all(
                other <= mine for other in view.identifiers
            )  # own id compares equal, never greater
            else 0
        )


@register_algorithm("random-priority", kind="view", needs="randomness",
                    fuzz_params={"radius": (1, 2)},
                    domains=(
                        {"graph": "path", "n": (2, 16)},
                        {"graph": "cycle", "n": (3, 16)},
                        {"graph": "star", "leaves": (1, 8)},
                        {"graph": "clique", "n": (2, 8)},
                        {"graph": "tree", "delta": (2, 3), "depth": (1, 3)},
                        {"graph": "torus", "rows": (3, 5), "cols": (3, 5)},
                        {"graph": "hypercube", "dim": (1, 4)},
                    ),
                    invariances=("determinism", "backend-identity",
                                 "port-permutation", "label-order"))
class RandomPriorityRule(ViewAlgorithm):
    """Output 1 iff the center's random value strictly beats its ball.

    The anonymous randomized analogue of :class:`LocalMaximumRule`:
    priorities come from the ``randomness`` labeling instead of
    identifiers, and ties lose (output 0), so the rule stays a function
    of the view even when values collide.
    """

    def __init__(self, radius: int = 1):
        if radius < 1:
            raise ValueError("a radius-0 node has nobody to compare against")
        self.radius = radius
        self.name = f"random-priority-r{radius}"

    def output(self, view: View) -> int:
        if view.randomness is None:
            raise ValueError(f"{self.name} needs a randomness labeling")
        mine = view.randomness[view.center]
        return (
            1
            if all(
                view.randomness[i] < mine
                for i in range(view.node_count)
                if i != view.center
            )
            else 0
        )


@register_algorithm("ball-signature", kind="view", needs="none",
                    fuzz_params={"radius": (1, 2)},
                    domains=(
                        {"graph": "path", "n": (2, 16)},
                        {"graph": "cycle", "n": (3, 16)},
                        {"graph": "star", "leaves": (1, 8)},
                        {"graph": "tree", "delta": (2, 3), "depth": (1, 3)},
                        {"graph": "torus", "rows": (3, 5), "cols": (3, 5)},
                        {"graph": "hypercube", "dim": (1, 4)},
                    ),
                    # NOT port-permutation invariant: the digest hashes
                    # View.key(), which includes the port numbering.
                    invariances=("determinism", "backend-identity"))
class BallSignatureColoring(ViewAlgorithm):
    """Color the center by a stable digest of its whole view.

    Two nodes get the same color iff ``View.key()`` hashes alike — in
    particular, *indistinguishable* nodes always agree, which is the
    most an anonymous deterministic algorithm can do (the
    indistinguishability arguments of Sections 3-4).  The digest is
    ``sha256`` of the key's ``repr``, not Python's ``hash``: the latter
    is salted per process, which would make experiment artifacts (and
    the differential harness) irreproducible.
    """

    def __init__(self, radius: int = 2, palette: int = 8):
        if radius < 0:
            raise ValueError("radius must be non-negative")
        if palette < 1:
            raise ValueError("palette must be positive")
        self.radius = radius
        self.palette = palette
        self.name = f"ball-signature-r{radius}-c{palette}"

    def output(self, view: View) -> int:
        digest = hashlib.sha256(repr(view.key()).encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") % self.palette


@register_algorithm("degree-profile", kind="view", needs="none",
                    fuzz_params={"radius": (1, 2)},
                    domains=(
                        {"graph": "path", "n": (2, 16)},
                        {"graph": "cycle", "n": (3, 16)},
                        {"graph": "star", "leaves": (1, 8)},
                        {"graph": "clique", "n": (2, 8)},
                        {"graph": "tree", "delta": (2, 3), "depth": (1, 3)},
                        {"graph": "torus", "rows": (3, 5), "cols": (3, 5)},
                        {"graph": "hypercube", "dim": (1, 4)},
                    ),
                    invariances=("determinism", "backend-identity",
                                 "port-permutation", "label-order"))
class DegreeProfileRule(ViewAlgorithm):
    """Output the ball's degree histogram, layered by distance.

    A structured (non-integer) output: for each distance ``d`` up to the
    radius, the sorted multiset of degrees of nodes at distance exactly
    ``d``.  Anonymous and deterministic; exercises caching of composite
    hashable outputs.
    """

    def __init__(self, radius: int = 2):
        if radius < 0:
            raise ValueError("radius must be non-negative")
        self.radius = radius
        self.name = f"degree-profile-r{radius}"

    def output(self, view: View) -> Tuple[Tuple[int, ...], ...]:
        return tuple(
            tuple(sorted(view.degrees[i] for i in view.nodes_at_distance(d)))
            for d in range(self.radius + 1)
        )


#: Registry names accepted by :func:`make_view_rule` (and therefore by
#: the experiment runner's ``view-algorithm`` cells).
VIEW_RULE_NAMES = (
    "local-max",
    "random-priority",
    "ball-signature",
    "degree-profile",
)


def make_view_rule(name: str, radius: int = 2) -> ViewAlgorithm:
    """Build a registered view rule at the given radius.

    Compatibility wrapper over :data:`repro.core.registry.ALGORITHMS`
    (entries with ``kind="view"``); whether a rule needs ``ids`` or
    ``randomness`` is the entry's ``needs`` metadata.
    """
    if name not in VIEW_RULE_NAMES:
        raise ValueError(f"unknown view rule {name!r} (have {VIEW_RULE_NAMES})")
    return ALGORITHMS.create(name, radius=radius)
