"""Built-in vectorized kernels for the registered algorithms.

Each kernel here compiles one algorithm from
:mod:`repro.algorithms.view_rules` / :mod:`repro.algorithms.message_passing`
into the NumPy execution plans of :mod:`repro.local_model.kernels`:

* view rules become *class-table* kernels — one segmented reduction
  over the packed rows of every view-equivalence class at once;
* message-passing algorithms become *round* kernels — one SpMV-shaped
  gather/scatter over the CSR arrays per synchronous round.

Every kernel is bound by the authoring contract in ``docs/KERNELS.md``:
bit-identical outputs to the reference per-entity path or an explicit
:class:`~repro.local_model.kernels.KernelUnsupported` decline *before*
any observable effect.  The parity suites re-prove the identity on
random graphs every CI run; nothing here is trusted by construction.

This module is imported lazily by the kernel registries on first
lookup (and eagerly by :func:`repro.core.registry.ensure_builtins`);
importing it has no effect beyond filling the registries.
"""

from __future__ import annotations

import random
from typing import Optional

import numpy as np

from ..local_model.kernels import (
    KernelState,
    KernelUnsupported,
    LocalKernel,
    PackedRows,
    register_finite_kernel,
    register_local_kernel,
    register_view_kernel,
    view_kernel_for,
)
from ..local_model.order_invariant import OrderInvariantProjection
from ..speedup.algorithms import NodeAlgorithm
from .message_passing import (
    ColeVishkinMP,
    FloodLeaderParity,
    LubyMIS,
    RandomizedWeakColoring,
)
from .view_rules import LocalMaximumRule, RandomPriorityRule

__all__ = [
    "ColeVishkinKernel",
    "FloodKernel",
    "WeakColoringKernel",
    "LubyMISKernel",
    "node_algorithm_finite_kernel",
]

_INTLIKE = (bool, int, np.integer)


# ----------------------------------------------------------------------
# View kernels: one segmented reduction per class table
# ----------------------------------------------------------------------

@register_view_kernel(LocalMaximumRule)
def _local_max_kernel(algorithm: LocalMaximumRule, rows: PackedRows):
    # output(view) == 1 iff every identifier in the ball is <= the
    # center's, i.e. iff the center attains the segment maximum (the
    # center's own id participates, so ties at the top still win).
    return (
        (rows.segment_max("ids") == rows.center("ids"))
        .astype(np.int64)
        .tolist()
    )


@register_view_kernel(OrderInvariantProjection)
def _order_invariant_kernel(algorithm: OrderInvariantProjection,
                            rows: PackedRows):
    # The projection replaces each view's identifiers by their ranks
    # and delegates; the kernel does the same on the packed streams.
    # Packed exploration order equals the view's node order, so a
    # stable per-segment sort reproduces Python's ``sorted`` ranks
    # (ties keep exploration order) and the inner kernel — whose own
    # contract proves the rest — sees exactly the projected views.
    inner_fn = view_kernel_for(algorithm.inner)
    if inner_fn is None:
        raise KernelUnsupported("no-kernel")
    vals, bounds = rows.column("ids")
    seg = np.repeat(np.arange(rows.count, dtype=np.int64), rows.k)
    order = np.lexsort((vals, seg))
    ranks = np.empty(vals.shape[0], dtype=np.int64)
    ranks[order] = (
        np.arange(vals.shape[0], dtype=np.int64)
        - np.repeat(bounds, rows.k) + 1
    )
    return inner_fn(algorithm.inner, rows.with_column("ids", ranks))


@register_view_kernel(RandomPriorityRule)
def _random_priority_kernel(algorithm: RandomPriorityRule, rows: PackedRows):
    # output(view) == 1 iff the center *strictly* beats everyone else:
    # it attains the segment maximum and the maximum is unique (ties
    # lose, exactly as the reference rule).
    mx, cnt = rows.segment_max_count("randomness")
    return (
        ((mx == rows.center("randomness")) & (cnt == 1))
        .astype(np.int64)
        .tolist()
    )


# ----------------------------------------------------------------------
# Round kernels: gather/scatter over CSR per synchronous round
# ----------------------------------------------------------------------

class ColeVishkinKernel(LocalKernel):
    """Vectorized :class:`~repro.algorithms.message_passing.ColeVishkinMP`.

    CV steps become the bit trick on whole color arrays (``frexp`` of
    the isolated lowest differing bit gives its exact index); the
    recolor phases become one ``bitwise_or.reduceat`` over neighbor
    colors.  The pseudoforest invariant (every node has a successor)
    guarantees non-empty CSR segments, so no sentinel padding is
    needed.
    """

    def supports(self, request) -> Optional[str]:
        """Decline orientations, malformed labels, and palette overflows."""
        if request.orientation is not None:
            return "unsupported: orientation"
        inputs = request.inputs
        if inputs is None:
            return "unsupported: missing inputs"
        if self.algorithm.color_bits > 62:
            return "unsupported: color_bits beyond int64 range"
        limit = 1 << self.algorithm.color_bits
        degrees = request.graph.csr().degrees
        for v, label in enumerate(inputs):
            if not isinstance(label, (tuple, list)) or len(label) != 2:
                return "unsupported: malformed input labels"
            succ_port, color = label
            if not isinstance(succ_port, _INTLIKE) or not isinstance(
                color, _INTLIKE
            ):
                return "unsupported: non-integer input labels"
            if not 0 <= int(succ_port) < int(degrees[v]):
                return "unsupported: successor port out of range"
            if not 0 <= int(color) < limit:
                return "unsupported: color outside the declared palette"
        return None

    def init(self, state: KernelState) -> None:
        """Parse ``(successor port, color)`` inputs into arrays."""
        csr = state.csr
        pairs = np.asarray(
            [(int(sp), int(c)) for sp, c in state.request.inputs],
            dtype=np.int64,
        ).reshape(state.n, 2)
        self.colors = pairs[:, 1].copy()
        self.succ = csr.indices[csr.indptr[:-1] + pairs[:, 0]]
        self.cv_rounds = self.algorithm.cv_rounds
        self.total_rounds = self.algorithm.total_rounds

    #: avail (a 3-bit mask, never 0 here) -> its lowest set bit index,
    #: i.e. min color in {0,1,2} not used by any neighbor.
    _LOWEST_BIT = np.array([-1, 0, 1, 0, 2, 0, 1, 0], dtype=np.int64)

    def step(self, state: KernelState) -> None:
        """One CV halving round, or one of the six reduce-to-3 phases."""
        rnd = state.round
        colors = self.colors
        succ_color = colors[self.succ]
        if rnd <= self.cv_rounds:
            diff = colors ^ succ_color
            bad = np.flatnonzero(diff == 0)
            if bad.size:
                color = int(colors[bad[0]])
                raise ValueError(
                    f"CV step needs distinct colors, got {color} twice"
                )
            # The isolated lowest set bit is an exact power of two, so
            # frexp's exponent recovers its index without rounding.
            low = (diff & -diff).astype(np.float64)
            i = (np.frexp(low)[1] - 1).astype(np.int64)
            self.colors = 2 * i + ((colors >> i) & 1)
        else:
            phase = rnd - self.cv_rounds  # 1..6
            if phase % 2 == 1:
                self.colors = succ_color.copy()
            else:
                target = {2: 5, 4: 4, 6: 3}[phase]
                csr = state.csr
                c_nb = colors[csr.indices]
                contrib = np.where(
                    c_nb < 3,
                    np.int64(1) << np.minimum(c_nb, np.int64(62)),
                    np.int64(0),
                )
                used = np.bitwise_or.reduceat(contrib, csr.indptr[:-1])
                avail = ~used & 7
                sel = colors == target
                if bool((sel & (avail == 0)).any()):
                    raise ValueError("min() arg is an empty sequence")
                recolored = colors.copy()
                recolored[sel] = self._LOWEST_BIT[avail[sel]]
                self.colors = recolored
        if rnd == self.total_rounds:
            state.halt(~state.halted, self.colors)


register_local_kernel(ColeVishkinMP)(ColeVishkinKernel)


class FloodKernel(LocalKernel):
    """Vectorized :class:`~repro.algorithms.message_passing.FloodLeaderParity`.

    The lexicographic ``(identifier, distance)`` minimum is encoded as
    one integer ``identifier * M + distance`` with ``M = 2n + 2``
    (distances never exceed ``n``), so each round is a single
    ``minimum.reduceat`` over neighbor keys plus one.  Identifier
    magnitudes that could overflow the encoding decline to the exact
    fallback.
    """

    _SENTINEL = np.int64(2**62)

    def supports(self, request) -> Optional[str]:
        """Decline orientations and ids that overflow the int64 encoding."""
        if request.orientation is not None:
            return "unsupported: orientation"
        ids = request.ids
        if ids is None:
            return "unsupported: missing identifiers"
        bound = (2**62) // (2 * request.graph.n + 2)
        for x in ids:
            if not isinstance(x, _INTLIKE):
                return "unsupported: non-integer identifiers"
            if abs(int(x)) >= bound:
                return "unsupported: identifier magnitude overflows encoding"
        return None

    def init(self, state: KernelState) -> None:
        """Encode each node's ``(id, 0)`` as its starting flood key."""
        ids = np.asarray(
            [int(x) for x in state.request.ids], dtype=np.int64
        )
        self.modulus = np.int64(2 * state.n + 2)
        self.key = ids * self.modulus

    def step(self, state: KernelState) -> None:
        """Fold each node's key with its neighbors' best, plus one hop."""
        csr = state.csr
        key = self.key
        # Every live neighbor broadcasts its best; receiving adds one
        # hop.  A sentinel entry keeps reduceat in bounds for trailing
        # isolated nodes, whose (bogus) segment values are masked out.
        contrib = np.append(key[csr.indices] + 1, self._SENTINEL)
        best_nb = np.minimum.reduceat(contrib, csr.indptr[:-1])
        self.key = np.where(
            csr.degrees > 0, np.minimum(key, best_nb), key
        )
        if state.round >= state.n:
            # Floor-mod recovers the distance for negative identifiers
            # too; its parity is the output.
            state.halt(~state.halted, (self.key % self.modulus) % 2)


register_local_kernel(FloodLeaderParity)(FloodKernel)


class WeakColoringKernel(LocalKernel):
    """Vectorized
    :class:`~repro.algorithms.message_passing.RandomizedWeakColoring`.

    Frozen-neighbor color counts and active-witness detection are arc
    scatters (``bincount`` / boolean indexing); the only per-node
    Python left is the redraw, which touches each still-symmetric node
    once per round — a geometrically shrinking set.  Each node's redraw
    stream comes from ``random.Random(words[v])``, the exact private
    RNG the reference engine would construct, so the runs are
    bit-identical draw for draw.
    """

    def supports(self, request) -> Optional[str]:
        """Decline orientations and randomness-forbidding runs."""
        if request.orientation is not None:
            return "unsupported: orientation"
        if request.deterministic:
            return "unsupported: deterministic run (randomness forbidden)"
        return None

    def init(self, state: KernelState) -> None:
        """Replay each node's private-RNG first draw; halt isolated nodes."""
        n = state.n
        isolated = state.csr.degrees == 0
        if isolated.any():
            # Vacuously weakly colored, exactly like the reference init.
            state.halt(isolated, np.zeros(int(isolated.sum()), np.int64))
        self.rngs = {}
        colors = np.zeros(n, dtype=np.int64)
        for v in np.flatnonzero(~isolated).tolist():
            rng = random.Random(state.words[v])
            self.rngs[v] = rng
            colors[v] = rng.randrange(2)
        self.colors = colors
        self.final = np.zeros(n, dtype=bool)
        # Accumulated frozen-witness colors: how many *final* neighbors
        # of each node announced color 0 / 1 (the vectorized form of
        # the reference's persistent ``final_neighbors`` map).
        self.final_count = np.zeros((2, n), dtype=np.int64)

    def step(self, state: KernelState) -> None:
        """One exchange round: freeze witnesses, linger-halt, redraw."""
        csr = state.csr
        colors, final = self.colors, self.final
        halted = state.halted.copy()  # round-start snapshot
        recv, sender = state.arc_src, csr.indices
        # An arc carries a message iff its sender still runs (halted
        # nodes are silent) and its receiver still runs (deliveries to
        # halted nodes are dropped); only undecided receivers look.
        undecided = ~halted & ~final
        live = undecided[recv] & ~halted[sender]
        frozen_arcs = np.flatnonzero(live & final[sender])
        if frozen_arcs.size:
            announced = colors[sender[frozen_arcs]]
            for c in (0, 1):
                self.final_count[c] += np.bincount(
                    recv[frozen_arcs[announced == c]], minlength=state.n
                )
        opposite = np.where(colors == 0, self.final_count[1],
                            self.final_count[0])
        witnessed = np.zeros(state.n, dtype=bool)
        active_arcs = live & ~final[sender] & (colors[sender] != colors[recv])
        witnessed[recv[active_arcs]] = True
        newly_final = undecided & ((opposite > 0) | witnessed)
        # Nodes already final at round start sent their flagged color
        # this round; now they halt with it (the reference's linger).
        lingering = ~halted & final
        state.halt(lingering, colors[lingering])
        final[newly_final] = True
        for v in np.flatnonzero(undecided & ~newly_final).tolist():
            colors[v] = self.rngs[v].randrange(2)


register_local_kernel(RandomizedWeakColoring)(WeakColoringKernel)


class LubyMISKernel(LocalKernel):
    """Vectorized :class:`~repro.algorithms.message_passing.LubyMIS`.

    Luby rounds pair up: odd rounds draw one 48-bit priority per still-
    running node and compare against the neighborhood maximum (one
    ``maximum.reduceat`` with a ``-1`` sentinel — strict local maxima
    join, exactly the reference's vacuous-``all`` semantics for nodes
    whose neighbors have all halted); even rounds scatter the join
    decisions along live arcs, halting joiners ``True`` and their
    neighbors ``False``.  Each priority comes from
    ``random.Random(words[v])``, the reference node's private RNG, so
    runs are bit-identical draw for draw.  The reference's port
    bookkeeping needs no counterpart: a node only ever *announces* a
    decision in the round it halts, so live arcs carry every message
    the reference delivers.
    """

    def supports(self, request) -> Optional[str]:
        """Decline orientations and randomness-forbidding runs."""
        if request.orientation is not None:
            return "unsupported: orientation"
        if request.deterministic:
            return "unsupported: deterministic run (randomness forbidden)"
        return None

    def init(self, state: KernelState) -> None:
        """Build the private RNGs; isolated nodes join immediately."""
        isolated = state.csr.degrees == 0
        if isolated.any():
            state.halt(isolated, [True] * int(isolated.sum()))
        self.rngs = {
            v: random.Random(state.words[v])
            for v in np.flatnonzero(~isolated).tolist()
        }
        self.in_mask = np.zeros(state.n, dtype=bool)

    def step(self, state: KernelState) -> None:
        """One Luby half-step: priorities on odd rounds, decisions on even."""
        csr = state.csr
        active = ~state.halted
        recv, sender = state.arc_src, csr.indices
        live = active[recv] & active[sender]
        if state.round % 2 == 1:
            prio = np.zeros(state.n, dtype=np.int64)
            for v in np.flatnonzero(active).tolist():
                prio[v] = self.rngs[v].getrandbits(48)
            contrib = np.append(
                np.where(live, prio[sender], np.int64(-1)), np.int64(-1)
            )
            best = np.maximum.reduceat(contrib, csr.indptr[:-1])
            self.in_mask = active & (prio > best)
        else:
            received_in = np.zeros(state.n, dtype=bool)
            received_in[recv[live & self.in_mask[sender]]] = True
            winners = self.in_mask & ~received_in
            losers = active & received_in
            state.halt(winners, [True] * int(winners.sum()))
            state.halt(losers, [False] * int(losers.sum()))


register_local_kernel(LubyMIS)(LubyMISKernel)


# ----------------------------------------------------------------------
# Finite kernels: distinct-assignment evaluation of the finite runner
# ----------------------------------------------------------------------

@register_finite_kernel(NodeAlgorithm)
def node_algorithm_finite_kernel(algorithm, graph, values, tables):
    """Evaluate a ``finite`` request through distinct assignment keys.

    Registered on the :class:`~repro.speedup.algorithms.NodeAlgorithm`
    base so every tree algorithm gets it (and the conformance
    broken-trial fixture can shadow it on a subclass).  Encodes each
    node's ball assignment as one base-``values`` integer, evaluates
    only the distinct keys, and reduces the failing-node predicate as
    array ops — the same outputs and the same ascending failing list
    as the reference per-node loop.
    """
    from ..speedup import trial_kernel as tk

    n = graph.n
    if n == 0:
        return [], []
    if not all(isinstance(x, _INTLIKE) for x in values):
        raise KernelUnsupported("unsupported: non-integer random values")
    matrix = np.asarray(values, dtype=np.int64).reshape(1, n)
    codes, outputs, inverse = tk.assignment_codes(algorithm, matrix, tables)
    degrees, indptr, indices = tk.arc_arrays(graph)
    failing = tk.failing_nodes(codes[0], degrees, indptr, indices)
    return [outputs[i] for i in inverse[0].tolist()], failing
