"""Solving the pointer problem P* (Lemma 3 and Lemma 17).

Lemma 3: in time O(r), P* can be solved in the 1-neighborhood of every
node that has an irregularity within distance r.  The algorithm (Section
8.1) makes every such node point toward its preferred irregularity:

* cycles are preferred, closest first, ties by smallest maximum
  identifier; a node *on* its chosen cycle follows the cycle's canonical
  orientation (the smallest-identifier cycle node points toward its
  smaller neighbor, everyone follows), labeled ``d = 0``;
* otherwise the closest low-degree node ``u`` wins (ties: smaller degree,
  then smaller identifier); nodes on the path advertise ``d = deg(u)``,
  except that a path node whose own preference is a cycle forces the
  advertisement down to ``d = 0``.

Lemma 17: every node of a graph of maximum degree Delta sees an
irregularity within O(log_Delta n) — a ball of larger radius with all
degrees Delta and no cycle would exceed n nodes — so growing ``r``
geometrically solves P* everywhere in O(log n) rounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..graphs.graph import Graph
from ..lcl.pointer import (
    CycleIrregularity,
    Irregularity,
    LowDegreeIrregularity,
    PStarLabel,
    closest_irregularity,
    degree_delta_cycles,
)

__all__ = ["PStarSolution", "solve_pstar_partial", "solve_pstar"]


@dataclass
class PStarSolution:
    """Outcome of a P* solve.

    Attributes
    ----------
    labels:
        Per-node :class:`PStarLabel`, ``None`` where the radius did not
        reach an irregularity (possible only in the partial solve).
    radius:
        The look-ahead radius ``r`` used.
    rounds:
        Round cost: the algorithm inspects ``B_{2r}(v)`` (the extra ``r``
        is the cycle-diversion check on the path), so ``2 * r``.
    """

    labels: List[Optional[PStarLabel]]
    radius: int
    rounds: int

    def labeled_fraction(self) -> float:
        """Fraction of nodes that received a label."""
        if not self.labels:
            return 1.0
        return sum(1 for x in self.labels if x is not None) / len(self.labels)


def _cycle_pointer(
    cycle: CycleIrregularity, v: int, ids: Sequence[int]
) -> int:
    """Where a node on ``cycle`` points: follow the canonical orientation.

    The cycle node with the smallest identifier points toward its
    smaller-identifier cycle neighbor; every other node continues in the
    same rotational direction.
    """
    nodes = cycle.nodes
    k = len(nodes)
    leader_pos = min(range(k), key=lambda i: ids[nodes[i]])
    succ = nodes[(leader_pos + 1) % k]
    pred = nodes[(leader_pos - 1) % k]
    step = 1 if ids[succ] < ids[pred] else -1
    pos = nodes.index(v)
    return nodes[(pos + step) % k]


def _next_hop_toward(
    graph: Graph, v: int, dist: Dict[int, int], ids: Sequence[int]
) -> int:
    """The smallest-identifier neighbor strictly closer to the target."""
    best: Optional[Tuple[int, int]] = None
    dv = dist[v]
    for u in graph.neighbors(v):
        if dist.get(u, dv) == dv - 1:
            key = (ids[u], u)
            if best is None or key < best:
                best = key
    if best is None:
        raise AssertionError(f"node {v} has no neighbor closer to its target (bug)")
    return best[1]


def _solve_pstar_acyclic(
    graph: Graph, delta: int, r: int, ids: Sequence[int]
) -> PStarSolution:
    """Fast path for graphs with no degree-Delta cycle in range.

    A single multi-source Dijkstra with composite keys ``(distance,
    degree, identifier)`` — exactly Lemma 3's low-degree preference
    rule — labels every node at once.  Along any pointer chain the
    winning key's target is provably consistent (two adjacent nodes
    whose best distances differ by one share the same best target), so
    chains carry one ``d`` value and terminate at their target.
    """
    import heapq

    n = graph.n
    INF = (r + 1, 0, 0, -1)
    best: List[Tuple[int, int, int, int]] = [INF] * n  # (dist, deg_t, id_t, t)
    heap = []
    for u in graph.nodes():
        if graph.degree(u) < delta:
            key = (0, graph.degree(u), ids[u], u)
            best[u] = key
            heapq.heappush(heap, key + (u,))
    while heap:
        dist, deg_t, id_t, t, v = heapq.heappop(heap)
        if best[v] != (dist, deg_t, id_t, t):
            continue
        if dist >= r:
            continue
        for w in graph.neighbors(v):
            candidate = (dist + 1, deg_t, id_t, t)
            if candidate < best[w]:
                best[w] = candidate
                heapq.heappush(heap, candidate + (w,))

    labels: List[Optional[PStarLabel]] = [None] * n
    for v in graph.nodes():
        deg = graph.degree(v)
        if deg < delta:
            labels[v] = PStarLabel(d=deg, p=None)
            continue
        dist, deg_t, id_t, t = best[v]
        if t < 0 or dist > r:
            continue
        hop = min(
            (ids[w], w)
            for w in graph.neighbors(v)
            if best[w][0] == dist - 1 and best[w][1:] == (deg_t, id_t, t)
        )[1]
        labels[v] = PStarLabel(d=deg_t, p=hop)
    return PStarSolution(labels=labels, radius=r, rounds=2 * r)


def solve_pstar_partial(
    graph: Graph,
    delta: int,
    r: int,
    ids: Sequence[int],
) -> PStarSolution:
    """Lemma 3: label all nodes with an irregularity within distance ``r``.

    Nodes whose radius-``r`` surroundings are a clean piece of
    Delta-regular tree stay unlabeled.  The returned labeling is
    P*-happy at every labeled node whose pointer target is labeled —
    which, per Lemma 3, covers the 1-neighborhood of every node within
    distance ``r`` of an irregularity.
    """
    if r < 0:
        raise ValueError("radius must be non-negative")
    n = graph.n
    # Forests cannot contain cycle irregularities; skipping the cycle
    # enumeration keeps the common (tree) case near-linear.
    cycle_free = graph.m == n - len(graph.connected_components())
    cycles = (
        []
        if cycle_free
        else degree_delta_cycles(graph, delta, max_length=2 * r + 1)
    )
    if not cycles:
        return _solve_pstar_acyclic(graph, delta, r, ids)

    irr: List[Optional[Irregularity]] = [
        closest_irregularity(graph, v, delta, r, ids, cycles=cycles) for v in graph.nodes()
    ]

    # Cache multi-source BFS per irregularity target.
    bfs_cache: Dict[Tuple, Dict[int, int]] = {}

    def distances_to(target: Irregularity) -> Dict[int, int]:
        key = (
            ("node", target.node)
            if isinstance(target, LowDegreeIrregularity)
            else ("cycle", target.nodes)
        )
        if key not in bfs_cache:
            if isinstance(target, LowDegreeIrregularity):
                bfs_cache[key] = graph.bfs_distances(target.node)
            else:
                # Multi-source BFS from the cycle nodes.
                from collections import deque

                dist = {u: 0 for u in target.nodes}
                frontier = deque(target.nodes)
                while frontier:
                    x = frontier.popleft()
                    for y in graph.neighbors(x):
                        if y not in dist:
                            dist[y] = dist[x] + 1
                            frontier.append(y)
                bfs_cache[key] = dist
        return bfs_cache[key]

    labels: List[Optional[PStarLabel]] = [None] * n
    for v in graph.nodes():
        deg = graph.degree(v)
        if deg < delta:
            labels[v] = PStarLabel(d=deg, p=None)
            continue
        target = irr[v]
        if target is None:
            continue
        if isinstance(target, CycleIrregularity):
            if v in target.nodes:
                labels[v] = PStarLabel(d=0, p=_cycle_pointer(target, v, ids))
            else:
                dist = distances_to(target)
                labels[v] = PStarLabel(d=0, p=_next_hop_toward(graph, v, dist, ids))
            continue
        # Low-degree target u: walk the canonical path and look for a
        # cycle-preferring node on it (the Lemma 3 diversion rule).
        dist = distances_to(target)
        hop = _next_hop_toward(graph, v, dist, ids)
        diverted = False
        x = hop
        while x != target.node:
            if isinstance(irr[x], CycleIrregularity):
                diverted = True
                break
            x = _next_hop_toward(graph, x, dist, ids)
        d_value = 0 if diverted else target.degree
        labels[v] = PStarLabel(d=d_value, p=hop)

    return PStarSolution(labels=labels, radius=r, rounds=2 * r)


def solve_pstar(graph: Graph, delta: int, ids: Sequence[int]) -> PStarSolution:
    """Lemma 17: solve P* everywhere in O(log_Delta n) rounds.

    On forests the minimal radius is computed exactly (the farthest any
    node sits from a low-degree node); cyclic graphs grow the radius
    geometrically until every node is covered.  The geometric growth of
    degree-Delta tree balls guarantees ``r = O(log_Delta n)`` either
    way, and the radius used is reported so callers can chart the
    measured complexity.
    """
    cycle_free = graph.m == graph.n - len(graph.connected_components())
    if cycle_free:
        from collections import deque

        dist = {v: 0 for v in graph.nodes() if graph.degree(v) < delta}
        if len(dist) < graph.n:
            frontier = deque(dist)
            while frontier:
                x = frontier.popleft()
                for y in graph.neighbors(x):
                    if y not in dist:
                        dist[y] = dist[x] + 1
                        frontier.append(y)
        if len(dist) != graph.n:
            raise ValueError(
                f"no node of degree < {delta} exists; an acyclic graph cannot "
                "be Delta-regular, so check the delta argument"
            )
        return solve_pstar_partial(graph, delta, max(dist.values(), default=0), ids)

    r = 1
    while True:
        solution = solve_pstar_partial(graph, delta, r, ids)
        if all(label is not None for label in solution.labels):
            return solution
        if r > 4 * graph.n:
            raise AssertionError("P* radius exceeded 4n without full coverage (bug)")
        r *= 2
