"""Solvers for homogeneous LCLs — the four classes of Theorem 5.

* Class (1), O(1): if a constant label is valid for the inner problem
  inside Delta-regular trees, output it wherever the local view is
  clean and fall back to P* pointer chains wherever an irregularity
  sits within the checking radius (:func:`solve_with_constant_label`).
* Class (2), Theta(log* n): the inner problem reduces to weak
  2-coloring; solve it with the Lemma 2 pipeline
  (:func:`solve_weak2_homogeneous`).
* Classes (3)/(4), Theta(log n): the universal fallback — label *every*
  node with P* via Lemma 17 (:func:`solve_all_pstar`).  Any homogeneous
  LCL accepts an all-P* labeling, which is exactly why O(log n) upper
  bounds every homogeneous problem.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence

from ..graphs.graph import Graph
from ..lcl.homogeneous import HomogeneousLabel
from ..lcl.pointer import PStarLabel
from .pointer_solver import solve_pstar, solve_pstar_partial
from .weak_coloring import weak_two_coloring_from_ids

__all__ = [
    "HomogeneousSolution",
    "solve_with_constant_label",
    "solve_weak2_homogeneous",
    "solve_all_pstar",
]


@dataclass
class HomogeneousSolution:
    """A homogeneous labeling plus round accounting."""

    labels: List[Optional[HomogeneousLabel]]
    rounds: int


def solve_with_constant_label(
    graph: Graph,
    delta: int,
    constant_label: Any,
    radius: int,
    ids: Sequence[int],
) -> HomogeneousSolution:
    """Theorem 5 class (1): constant label + P* near irregularities.

    Every node whose ``radius``-ball contains an irregularity gets a P*
    label (Lemma 3); everyone else outputs ``constant_label`` for the
    inner problem.  Runs in O(radius) rounds — constant for constant
    checking radius.
    """
    partial = solve_pstar_partial(graph, delta, radius, ids)
    labels: List[Optional[HomogeneousLabel]] = []
    for v in graph.nodes():
        star = partial.labels[v]
        if star is not None:
            labels.append(HomogeneousLabel.solve_pstar(star))
        else:
            labels.append(HomogeneousLabel.solve_p(constant_label))
    return HomogeneousSolution(labels=labels, rounds=partial.rounds)


def solve_weak2_homogeneous(graph: Graph, ids: Sequence[int]) -> HomogeneousSolution:
    """Theorem 5 class (2): homogeneous weak 2-coloring in Theta(log* n).

    Weak 2-coloring is solvable outright on any graph of minimum degree
    1, so the all-P labeling from the Lemma 2 pipeline is feasible for
    the homogeneous problem with no P* fallback at all.
    """
    result = weak_two_coloring_from_ids(graph, ids)
    labels = [HomogeneousLabel.solve_p(c) for c in result.labels]
    return HomogeneousSolution(labels=labels, rounds=result.rounds)


def solve_all_pstar(graph: Graph, delta: int, ids: Sequence[int]) -> HomogeneousSolution:
    """The universal O(log n) homogeneous solver: every node plays P*."""
    solution = solve_pstar(graph, delta, ids)
    labels = [
        HomogeneousLabel.solve_pstar(lab) if lab is not None else None
        for lab in solution.labels
    ]
    return HomogeneousSolution(labels=labels, rounds=solution.rounds)
