"""Cole-Vishkin color reduction on oriented pseudoforests.

Lemma 2 of the paper reduces a weak 2c-coloring to a weak 2-coloring by
running "the standard Cole-Vishkin color reduction algorithm" on the
pseudoforest in which every node points at one differently-colored
neighbor.  This module implements that machinery:

* one CV bit-trick step (:func:`cv_step`),
* the full reduction pipeline on a *pseudoforest* — a successor pointer
  per node — taking any proper coloring down to 3 colors
  (:func:`reduce_to_three_colors`), via iterated CV steps to 6 colors
  followed by three shift-down + recolor-class rounds,
* the round-accounting helpers (:func:`cv_iterations_needed`,
  :func:`log_star`) that make the O(log* c) running time inspectable.

A *pseudoforest* here is ``successor[v]`` = some neighbor of ``v``; the
edge set of the pseudoforest is ``{v, successor[v]}``.  A coloring is
proper on the pseudoforest iff every node's color differs from its
successor's (which also covers in-edges: each is someone's out-edge).
All phases run in one communication round each; the functions return the
round count alongside the colors so callers can account running time
exactly.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..graphs.graph import Graph

__all__ = [
    "log_star",
    "cv_step",
    "cv_iterations_needed",
    "is_proper_on_pseudoforest",
    "reduce_to_three_colors",
]


def log_star(x: float, base: float = 2.0) -> int:
    """The iterated logarithm: least ``k`` with ``log^(k)(x) <= 1``."""
    if x <= 1:
        return 0
    import math

    count = 0
    while x > 1:
        x = math.log(x, base)
        count += 1
    return count


def cv_step(color: int, successor_color: int) -> int:
    """One Cole-Vishkin step: pack (index, value) of the lowest differing bit.

    Given a proper pair (``color != successor_color``), returns
    ``2 * i + bit_i(color)`` where ``i`` is the lowest bit position at
    which the two colors differ.  Adjacent (along the pointer) outputs
    stay distinct: if ``v`` and ``s(v)`` chose the same ``i``, their bits
    at ``i`` differ by construction.
    """
    if color == successor_color:
        raise ValueError(f"CV step needs distinct colors, got {color} twice")
    diff = color ^ successor_color
    i = (diff & -diff).bit_length() - 1
    return 2 * i + ((color >> i) & 1)


def cv_iterations_needed(initial_bits: int) -> int:
    """Rounds of :func:`cv_step` until colors lie in ``{0..5}``.

    From a palette of ``initial_bits``-bit colors, one step maps to
    colors of ``ceil(log2(bits)) + 1`` bits; the fixed point is 3 bits,
    at which one further step lands in ``{0..5}`` (index <= 2, so the
    packed value is at most 5).  This bound is what every node computes
    locally from ``n`` so that all nodes stop the loop simultaneously.
    """
    if initial_bits < 1:
        raise ValueError("need at least 1 bit")
    bits = initial_bits
    rounds = 0
    while bits > 3:
        bits = max(1, (bits - 1).bit_length()) + 1
        rounds += 1
    # One final step from <= 3-bit colors into {0..5}.
    return rounds + 1


def is_proper_on_pseudoforest(colors: Sequence[int], successor: Sequence[int]) -> bool:
    """Whether every node's color differs from its successor's."""
    return all(colors[v] != colors[successor[v]] for v in range(len(colors)))


def _pseudoforest_neighbors(successor: Sequence[int]) -> List[List[int]]:
    """Adjacency of the pseudoforest (successor plus in-neighbors)."""
    n = len(successor)
    neighbors: List[List[int]] = [[] for _ in range(n)]
    for v, s in enumerate(successor):
        neighbors[v].append(s)
        neighbors[s].append(v)
    return [sorted(set(adj)) for adj in neighbors]


def reduce_to_three_colors(
    colors: Sequence[int], successor: Sequence[int], color_bits: int
) -> Tuple[List[int], int]:
    """Reduce a proper pseudoforest coloring to colors ``{0, 1, 2}``.

    Parameters
    ----------
    colors:
        Initial colors, proper along the pseudoforest, each below
        ``2 ** color_bits``.
    successor:
        ``successor[v]`` is the node ``v`` points at.
    color_bits:
        Public bound on the initial palette (all nodes must agree on it,
        as they do in LOCAL where ``n`` is common knowledge).

    Returns
    -------
    (three_colors, rounds):
        A proper pseudoforest 3-coloring and the number of communication
        rounds consumed: ``cv_iterations_needed(color_bits)`` CV rounds
        plus 6 rounds of shift-down / recolor-class.

    Notes
    -----
    Shift-down (every node adopts its successor's color) makes all of a
    node's in-neighbors monochromatic, so after it each node sees at most
    two distinct colors among its pseudoforest neighbors and the greedy
    recoloring of one color class into ``{0, 1, 2}`` always finds a free
    color.  On 2-cycles (mutual pointers) shift-down swaps the two
    colors, which stays proper.
    """
    n = len(colors)
    if len(successor) != n:
        raise ValueError("colors and successor must have equal length")
    for v in range(n):
        if not 0 <= colors[v] < (1 << color_bits):
            raise ValueError(f"color {colors[v]} of node {v} exceeds {color_bits} bits")
    if not is_proper_on_pseudoforest(colors, successor):
        raise ValueError("initial coloring is not proper on the pseudoforest")

    current = list(colors)
    rounds = 0
    for _ in range(cv_iterations_needed(color_bits)):
        current = [cv_step(current[v], current[successor[v]]) for v in range(n)]
        rounds += 1

    neighbors = _pseudoforest_neighbors(successor)
    for target in (5, 4, 3):
        # Shift-down: adopt the successor's color (1 round).
        current = [current[successor[v]] for v in range(n)]
        rounds += 1
        # Recolor the target class greedily into {0, 1, 2} (1 round).
        fresh = list(current)
        for v in range(n):
            if current[v] == target:
                used = {current[u] for u in neighbors[v]}
                fresh[v] = min(c for c in (0, 1, 2) if c not in used)
        current = fresh
        rounds += 1

    if not is_proper_on_pseudoforest(current, successor):
        raise AssertionError("CV reduction produced an improper coloring (bug)")
    if any(c not in (0, 1, 2) for c in current):
        raise AssertionError("CV reduction left colors outside {0,1,2} (bug)")
    return current, rounds
