"""Naor-Stockmeyer: O(1)-round weak 2-coloring in odd-degree graphs.

Table 1's fourth row.  The pipeline:

1. **Order-type labeling** (2 rounds).  Each node labels itself with the
   *order type* of its radius-2 ball: the ball's structure (distances,
   degrees, ports) together with the relative order of the identifiers
   (ranks, not values).  The palette is finite — a function of Delta
   only — and the labeling is computable in 2 rounds.

   Why this is a weak coloring when every degree is odd: a node ``v``
   with odd degree has ``in(v) != out(v)`` under the identifier
   orientation, so its ordered ball is asymmetric; in particular its
   out-children are themselves ordered, and the smaller out-child's
   ball records its sibling *above* it while the larger records the
   sibling *below* — two adjacent nodes cannot all mirror ``v``'s type.
   On even-degree graphs the labeling genuinely fails (e.g. a cycle
   with increasing identifiers is order-homogeneous), which is exactly
   the asymmetry the paper's lower bound exploits; the library's test
   suite checks both directions.

2. **Lemma 2 reduction** (O(log* |palette|) = O_Delta(1) rounds).  The
   weak coloring with constantly many colors feeds
   :mod:`repro.algorithms.weak_coloring`.

The in-degree labeling often quoted as a shortcut is *also* provided
(:func:`in_degree_labeling`) but it is not worst-case correct — a
BFS-ordered balanced tree gives every non-root node in-degree 1 — and
the library keeps it as a documented negative result / ablation.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..graphs.graph import Graph
from ..local_model.views import gather_view
from .weak_coloring import WeakTwoColoringResult, weak_two_coloring_from_weak_coloring

__all__ = [
    "in_degree_labeling",
    "order_type_labeling",
    "is_distance_k_weak",
    "odd_degree_weak_two_coloring",
    "ORDER_TYPE_RADIUS",
]

#: Ball radius of the order-type labeling; radius 2 is what the sibling
#: asymmetry argument needs (an out-child must see its sibling).
ORDER_TYPE_RADIUS = 2

#: Cap on the bit length of encoded order types.  For constant Delta the
#: radius-2 ball description has constant size, so this is a (generous)
#: constant; the encoder asserts it.
ORDER_TYPE_BITS = 1 << 16


def in_degree_labeling(graph: Graph, ids: Sequence[int]) -> Tuple[List[int], int]:
    """In-degrees under the identifier orientation (1 round).

    **Not a worst-case weak coloring**: on a balanced tree with BFS-order
    identifiers every non-root node has in-degree exactly 1.  Kept as a
    baseline and as the negative result motivating order types.
    """
    if len(set(ids)) != graph.n:
        raise ValueError("identifiers must be unique")
    labels = [
        sum(1 for u in graph.neighbors(v) if ids[u] < ids[v]) for v in graph.nodes()
    ]
    return labels, 1


def order_type_labeling(
    graph: Graph, ids: Sequence[int], radius: int = ORDER_TYPE_RADIUS
) -> Tuple[List[int], int]:
    """Order types of radius-``radius`` balls, injectively encoded as ints.

    The type records the canonical ball (distances, degrees, ports) and
    the identifier *ranks*; two nodes get equal labels iff their labeled
    balls are order-isomorphic.  Round cost: ``radius``.
    """
    if len(set(ids)) != graph.n:
        raise ValueError("identifiers must be unique")
    labels = []
    for v in graph.nodes():
        view = gather_view(graph, v, radius, ids=ids)
        order = sorted(range(view.node_count), key=lambda i: view.identifiers[i])
        rank = [0] * view.node_count
        for pos, i in enumerate(order):
            rank[i] = pos
        type_key = (view.distances, view.degrees, tuple(rank), view.edges)
        encoded = int.from_bytes(repr(type_key).encode("ascii"), "big")
        if encoded.bit_length() >= ORDER_TYPE_BITS:
            raise AssertionError(
                "order-type encoding exceeded the constant-size cap; "
                "raise ORDER_TYPE_BITS for this Delta"
            )
        labels.append(encoded)
    return labels, radius


def is_distance_k_weak(graph: Graph, labels: Sequence[int], k: int) -> bool:
    """Whether every node has a differently-labeled node within distance k."""
    for v in graph.nodes():
        ball = graph.bfs_distances(v, cutoff=k)
        if not any(u != v and labels[u] != labels[v] for u in ball):
            return False
    return True


def odd_degree_weak_two_coloring(
    graph: Graph, ids: Sequence[int]
) -> WeakTwoColoringResult:
    """Weak 2-coloring of an odd-degree graph in O_Delta(1) rounds.

    Parameters
    ----------
    graph:
        Every node must have odd degree.
    ids:
        Unique identifiers.

    Raises
    ------
    ValueError
        If some node has even degree, or (defensively) if the order-type
        labeling fails to be a weak coloring on this instance.
    """
    bad = [v for v in graph.nodes() if graph.degree(v) % 2 == 0]
    if bad:
        raise ValueError(
            f"odd-degree construction requires all degrees odd; node {bad[0]} "
            f"has degree {graph.degree(bad[0])}"
        )
    labels, r0 = order_type_labeling(graph, ids)
    if not is_distance_k_weak(graph, labels, 1):
        raise ValueError(
            "order-type labeling is not a weak coloring on this instance — "
            "this contradicts Naor-Stockmeyer; please report"
        )
    result = weak_two_coloring_from_weak_coloring(
        graph, labels, k=1, c=1 << ORDER_TYPE_BITS
    )
    result.rounds += r0
    result.phase_rounds["order_type"] = r0
    return result
