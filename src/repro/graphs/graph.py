"""Port-numbered graph substrate for the LOCAL model.

The LOCAL model operates on simple undirected graphs in which every node
numbers its incident edges with *ports* ``0 .. deg(v)-1``.  A message sent
through port ``i`` of node ``v`` arrives at the node at the other end of
``v``'s ``i``-th incident edge; the receiver learns through which of *its*
ports the message arrived.  This module provides :class:`Graph`, a compact
adjacency structure with explicit port numbering, plus the distance /
subgraph / structural queries that the rest of the library builds on.

Nodes are integers ``0 .. n-1``.  The structure is append-only while being
built and effectively immutable afterwards; :meth:`Graph.freeze` makes the
immutability explicit.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = ["Graph", "Edge", "edge_key"]

#: Canonical undirected edge key: endpoints in sorted order.
Edge = Tuple[int, int]


def edge_key(u: int, v: int) -> Edge:
    """Return the canonical (sorted) key for the undirected edge ``{u, v}``."""
    return (u, v) if u <= v else (v, u)


class Graph:
    """A simple undirected graph with port numbering.

    Parameters
    ----------
    n:
        Number of nodes.  Nodes are the integers ``0 .. n-1``.
    edges:
        Optional iterable of ``(u, v)`` pairs to add at construction time.
        Ports are assigned in insertion order: the ``i``-th edge added at a
        node occupies port ``i``.

    Notes
    -----
    The class deliberately does not depend on :mod:`networkx` on the hot
    path; conversion helpers (:meth:`to_networkx`, :meth:`from_networkx`)
    bridge to it for generators and verification utilities.
    """

    __slots__ = ("_n", "_adj", "_frozen", "_edge_set", "_csr")

    def __init__(self, n: int, edges: Optional[Iterable[Tuple[int, int]]] = None):
        if n < 0:
            raise ValueError(f"node count must be non-negative, got {n}")
        self._n = n
        self._adj: List[List[int]] = [[] for _ in range(n)]
        self._edge_set: Set[Edge] = set()
        self._frozen = False
        self._csr = None
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int) -> None:
        """Add the undirected edge ``{u, v}``.

        Raises
        ------
        ValueError
            On self-loops, duplicate edges, out-of-range endpoints, or if
            the graph has been frozen.
        """
        if self._frozen:
            raise ValueError("graph is frozen; no further edges may be added")
        if u == v:
            raise ValueError(f"self-loop at node {u} is not allowed (simple graphs only)")
        if not (0 <= u < self._n and 0 <= v < self._n):
            raise ValueError(f"edge ({u}, {v}) out of range for n={self._n}")
        key = edge_key(u, v)
        if key in self._edge_set:
            raise ValueError(f"duplicate edge ({u}, {v})")
        self._edge_set.add(key)
        self._adj[u].append(v)
        self._adj[v].append(u)

    def freeze(self) -> "Graph":
        """Mark the graph immutable.  Returns ``self`` for chaining.

        Freezing is what unlocks the compiled CSR layout: once frozen,
        :meth:`add_edge` raises (regression-tested), so :meth:`csr` can
        build its flat arrays exactly once and cache them without any
        staleness hazard.  Idempotent.
        """
        self._frozen = True
        return self

    @property
    def is_frozen(self) -> bool:
        """Whether :meth:`freeze` has been called (mutation now raises)."""
        return self._frozen

    def csr(self) -> "Any":
        """The compiled :class:`~repro.graphs.csr.CSRGraph` layout.

        Built on first call and cached on the graph; requires the graph
        to be frozen (a mutable graph would let the cached arrays go
        stale).  The engines call this on every ``layout="csr"`` run,
        so the build cost is paid once per graph, not once per run.
        """
        if not self._frozen:
            raise ValueError(
                "csr() requires a frozen graph; call freeze() first"
            )
        if self._csr is None:
            from .csr import CSRGraph

            self._csr = CSRGraph.from_graph(self)
        return self._csr

    @classmethod
    def from_adjacency(cls, adjacency: Sequence[Sequence[int]]) -> "Graph":
        """Build a graph with *explicit port numbering*.

        ``adjacency[v]`` lists ``v``'s neighbors in port order.  Unlike
        :meth:`add_edge` (which assigns ports by insertion order, and
        therefore cannot express every port numbering — e.g. a fully
        rotation-symmetric cycle), this constructor takes the port
        assignment as given.  The lists must describe a simple
        undirected graph: no self-loops, no duplicates, and ``u`` in
        ``adjacency[v]`` iff ``v`` in ``adjacency[u]``.
        """
        n = len(adjacency)
        g = cls(n)
        for v, neighbors in enumerate(adjacency):
            seen = set()
            for u in neighbors:
                if not 0 <= u < n:
                    raise ValueError(f"neighbor {u} of {v} out of range")
                if u == v:
                    raise ValueError(f"self-loop at node {v}")
                if u in seen:
                    raise ValueError(f"duplicate neighbor {u} at node {v}")
                seen.add(u)
        for v, neighbors in enumerate(adjacency):
            for u in neighbors:
                if v not in adjacency[u]:
                    raise ValueError(f"asymmetric adjacency: {u} in adj[{v}] only")
        g._adj = [list(neighbors) for neighbors in adjacency]
        g._edge_set = {edge_key(v, u) for v in range(n) for u in adjacency[v]}
        return g

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def m(self) -> int:
        """Number of edges."""
        return len(self._edge_set)

    def nodes(self) -> range:
        """All nodes, as a range."""
        return range(self._n)

    def edges(self) -> Iterator[Edge]:
        """Iterate over canonical edge keys in sorted order (deterministic)."""
        return iter(sorted(self._edge_set))

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``{u, v}`` is present."""
        return edge_key(u, v) in self._edge_set

    def degree(self, v: int) -> int:
        """Degree of node ``v``."""
        return len(self._adj[v])

    def max_degree(self) -> int:
        """Maximum degree over all nodes (0 for the empty graph)."""
        if self._n == 0:
            return 0
        return max(len(a) for a in self._adj)

    def min_degree(self) -> int:
        """Minimum degree over all nodes (0 for the empty graph)."""
        if self._n == 0:
            return 0
        return min(len(a) for a in self._adj)

    def is_regular(self, d: Optional[int] = None) -> bool:
        """Whether every node has the same degree (equal to ``d`` if given)."""
        if self._n == 0:
            return True
        degrees = {len(a) for a in self._adj}
        if len(degrees) != 1:
            return False
        return d is None or degrees == {d}

    def neighbors(self, v: int) -> Sequence[int]:
        """Neighbors of ``v`` in port order (port ``i`` leads to entry ``i``)."""
        return tuple(self._adj[v])

    def adjacency_rows(self) -> Sequence[Sequence[int]]:
        """The adjacency lists themselves, indexed by node, in port order.

        Unlike :meth:`neighbors` this does not copy — it hands out the
        internal lists for hot paths that walk many rows per call (the
        view engines).  Callers must treat the rows as read-only.
        """
        return self._adj

    # ------------------------------------------------------------------
    # Port numbering
    # ------------------------------------------------------------------
    def port_to(self, v: int, u: int) -> int:
        """The port of ``v`` whose edge leads to ``u``.

        Raises
        ------
        ValueError
            If ``u`` is not a neighbor of ``v``.
        """
        try:
            return self._adj[v].index(u)
        except ValueError:
            raise ValueError(f"{u} is not a neighbor of {v}") from None

    def endpoint(self, v: int, port: int) -> int:
        """The node at the other end of port ``port`` of node ``v``."""
        return self._adj[v][port]

    # ------------------------------------------------------------------
    # Distances and balls
    # ------------------------------------------------------------------
    def bfs_distances(self, source: int, cutoff: Optional[int] = None) -> Dict[int, int]:
        """Shortest-path (hop) distances from ``source``.

        Parameters
        ----------
        source:
            Start node.
        cutoff:
            If given, only nodes at distance at most ``cutoff`` are returned.
        """
        dist = {source: 0}
        frontier = deque([source])
        while frontier:
            v = frontier.popleft()
            dv = dist[v]
            if cutoff is not None and dv >= cutoff:
                continue
            for u in self._adj[v]:
                if u not in dist:
                    dist[u] = dv + 1
                    frontier.append(u)
        return dist

    def distance(self, u: int, v: int) -> int:
        """Hop distance between ``u`` and ``v``.

        Raises
        ------
        ValueError
            If ``v`` is unreachable from ``u``.
        """
        dist = self.bfs_distances(u)
        if v not in dist:
            raise ValueError(f"node {v} is unreachable from {u}")
        return dist[v]

    def ball(self, v: int, radius: int) -> List[int]:
        """Nodes at distance at most ``radius`` from ``v``, sorted."""
        return sorted(self.bfs_distances(v, cutoff=radius))

    def sphere(self, v: int, radius: int) -> List[int]:
        """Nodes at distance exactly ``radius`` from ``v``, sorted."""
        dist = self.bfs_distances(v, cutoff=radius)
        return sorted(u for u, d in dist.items() if d == radius)

    def eccentricity(self, v: int) -> int:
        """Maximum distance from ``v`` to any reachable node."""
        return max(self.bfs_distances(v).values())

    def diameter(self) -> int:
        """Maximum eccentricity over all nodes (graph must be connected).

        Trees use the exact double-BFS sweep (farthest node from an
        arbitrary root is an endpoint of a diameter); general graphs
        fall back to all-pairs BFS.
        """
        if not self.is_connected():
            raise ValueError("diameter is undefined for disconnected graphs")
        if self._n <= 1:
            return 0
        if self.is_tree():
            far = self.bfs_distances(0)
            u = max(far, key=lambda v: far[v])
            far_u = self.bfs_distances(u)
            return max(far_u.values())
        return max(self.eccentricity(v) for v in self.nodes())

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        """Whether the graph is connected (the empty graph counts as connected)."""
        if self._n == 0:
            return True
        return len(self.bfs_distances(0)) == self._n

    def is_tree(self) -> bool:
        """Whether the graph is a tree (connected and acyclic)."""
        return self.is_connected() and self.m == self._n - 1

    def connected_components(self) -> List[List[int]]:
        """All connected components, each sorted, ordered by smallest node."""
        seen: Set[int] = set()
        components = []
        for v in self.nodes():
            if v in seen:
                continue
            comp = sorted(self.bfs_distances(v))
            seen.update(comp)
            components.append(comp)
        return components

    def girth(self, cutoff: Optional[int] = None) -> Optional[int]:
        """Length of the shortest cycle, or ``None`` if acyclic.

        Parameters
        ----------
        cutoff:
            If given, stop searching once it is established that the girth
            exceeds ``cutoff``, returning ``None``.

        Notes
        -----
        Runs a BFS from every node; a cycle through the BFS root of length
        ``g`` is detected when two BFS branches meet.  O(n * m) worst case,
        which is fine at the bounded-degree scales this library targets.
        """
        best: Optional[int] = None
        for root in self.nodes():
            dist = {root: 0}
            parent = {root: -1}
            frontier = deque([root])
            while frontier:
                v = frontier.popleft()
                dv = dist[v]
                if best is not None and dv >= best // 2 + 1:
                    break
                if cutoff is not None and dv > cutoff // 2 + 1:
                    break
                for u in self._adj[v]:
                    if u == parent[v]:
                        continue
                    if u in dist:
                        cycle_len = dv + dist[u] + 1
                        if best is None or cycle_len < best:
                            best = cycle_len
                    else:
                        dist[u] = dv + 1
                        parent[u] = v
                        frontier.append(u)
        if best is not None and cutoff is not None and best > cutoff:
            return None
        return best

    def induced_subgraph(self, nodes: Iterable[int]) -> Tuple["Graph", Dict[int, int]]:
        """Subgraph induced by ``nodes``.

        Returns
        -------
        (subgraph, mapping):
            ``subgraph`` has its nodes relabeled ``0 .. k-1`` in sorted order
            of the originals; ``mapping`` sends original node ids to new ids.
            Port order within the subgraph follows the original port order
            restricted to surviving neighbors, so local structure used by
            LOCAL algorithms is preserved.
        """
        node_list = sorted(set(nodes))
        mapping = {v: i for i, v in enumerate(node_list)}
        sub = Graph(len(node_list))
        for v in node_list:
            for u in self._adj[v]:
                if u in mapping and v < u:
                    sub.add_edge(mapping[v], mapping[u])
        return sub, mapping

    def is_bipartite(self) -> bool:
        """Whether the graph is 2-colorable."""
        return self.bipartition() is not None

    def bipartition(self) -> Optional[Dict[int, int]]:
        """A proper 2-coloring ``{node: 0|1}``, or ``None`` if not bipartite."""
        color: Dict[int, int] = {}
        for root in self.nodes():
            if root in color:
                continue
            color[root] = 0
            frontier = deque([root])
            while frontier:
                v = frontier.popleft()
                for u in self._adj[v]:
                    if u not in color:
                        color[u] = 1 - color[v]
                        frontier.append(u)
                    elif color[u] == color[v]:
                        return None
        return color

    # ------------------------------------------------------------------
    # Conversion
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Convert to a :class:`networkx.Graph` (nodes and edges only)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(self.nodes())
        g.add_edges_from(self.edges())
        return g

    @classmethod
    def from_networkx(cls, g) -> "Graph":
        """Build from a :class:`networkx.Graph` with integer nodes ``0..n-1``."""
        nodes = sorted(g.nodes())
        if nodes and (nodes[0] != 0 or nodes[-1] != len(nodes) - 1):
            raise ValueError("networkx graph must have nodes 0..n-1; relabel first")
        out = cls(len(nodes))
        for u, v in sorted(tuple(edge_key(a, b)) for a, b in g.edges()):
            out.add_edge(u, v)
        return out

    # ------------------------------------------------------------------
    # Dunder / misc
    # ------------------------------------------------------------------
    def __getstate__(self):
        # The cached CSR layout is derived data; rebuilding it lazily on
        # the receiving side is cheaper than shipping numpy arrays in
        # every sharded-engine payload.
        return (self._n, self._adj, self._frozen, self._edge_set)

    def __setstate__(self, state):
        self._n, self._adj, self._frozen, self._edge_set = state
        self._csr = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(n={self._n}, m={self.m})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._n == other._n and self._edge_set == other._edge_set

    def __hash__(self) -> int:
        return hash((self._n, frozenset(self._edge_set)))

    def edge_set(self) -> FrozenSet[Edge]:
        """The set of canonical edge keys, as a frozenset."""
        return frozenset(self._edge_set)
