"""Consistent edge orientations for 2k-regular graphs.

Section 5 of the paper assumes 4-regular trees whose edges carry labels in
``{U, D, L, R}`` such that an edge labeled ``R`` at one endpoint is labeled
``L`` at the other, and ``U`` pairs with ``D``.  Section 7 generalizes to
2k-regular trees with ``k`` *dimensions*: every full-degree node has, for
each dimension ``d``, exactly one incident edge in the positive direction
of ``d`` and one in the negative direction.

We model a consistent orientation as an assignment ``edge -> (dim, low)``
where ``low`` is the endpoint that sees the edge in the *positive*
direction of dimension ``dim`` (think "moving right/up from ``low``").

For 4-regular graphs the classical names map as::

    dim 0, sign +1  ->  R        dim 1, sign +1  ->  U
    dim 0, sign -1  ->  L        dim 1, sign -1  ->  D
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Tuple

from .graph import Graph, Edge, edge_key

__all__ = [
    "Orientation",
    "orient_tree",
    "orient_torus",
    "orient_torus_nd",
    "DIRECTION_NAMES_4",
    "direction_name",
]

#: Human-readable direction names in the 4-regular (k=2) case.
DIRECTION_NAMES_4 = {(0, 1): "R", (0, -1): "L", (1, 1): "U", (1, -1): "D"}


def direction_name(dim: int, sign: int, k: int = 2) -> str:
    """Readable name for a direction; U/D/L/R when ``k == 2``."""
    if k == 2 and (dim, sign) in DIRECTION_NAMES_4:
        return DIRECTION_NAMES_4[(dim, sign)]
    return f"{'+' if sign > 0 else '-'}{dim}"


class Orientation:
    """A consistent k-dimensional orientation of (a subgraph of) ``graph``.

    Parameters
    ----------
    graph:
        The underlying graph.
    k:
        Number of dimensions; oriented nodes can have degree at most ``2k``.
    labels:
        Mapping from canonical edge keys to ``(dim, low)`` pairs, where
        ``0 <= dim < k`` and ``low`` is an endpoint of the edge.
    """

    __slots__ = ("graph", "k", "_labels", "_slots")

    def __init__(self, graph: Graph, k: int, labels: Dict[Edge, Tuple[int, int]]):
        if k < 1:
            raise ValueError("need at least one dimension")
        self.graph = graph
        self.k = k
        self._labels = dict(labels)
        # Per-node lookup: (dim, sign) -> neighbor.
        self._slots: List[Dict[Tuple[int, int], int]] = [dict() for _ in range(graph.n)]
        for (a, b), (dim, low) in self._labels.items():
            if not graph.has_edge(a, b):
                raise ValueError(f"labeled edge ({a}, {b}) not in graph")
            if low not in (a, b):
                raise ValueError(f"low endpoint {low} not on edge ({a}, {b})")
            if not 0 <= dim < k:
                raise ValueError(f"dimension {dim} out of range for k={k}")
            high = b if low == a else a
            for node, sign, other in ((low, 1, high), (high, -1, low)):
                slot = (dim, sign)
                if slot in self._slots[node]:
                    raise ValueError(
                        f"node {node} has two edges in direction {direction_name(dim, sign, k)}"
                    )
                self._slots[node][slot] = other

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def dim_of(self, u: int, v: int) -> int:
        """Dimension of the edge ``{u, v}``."""
        return self._labels[edge_key(u, v)][0]

    def sign_at(self, v: int, u: int) -> int:
        """+1 if the edge ``{v, u}`` leaves ``v`` in the positive direction."""
        dim, low = self._labels[edge_key(u, v)]
        return 1 if low == v else -1

    def direction_at(self, v: int, u: int) -> Tuple[int, int]:
        """``(dim, sign)`` of the edge ``{v, u}`` as seen from ``v``."""
        return (self.dim_of(u, v), self.sign_at(v, u))

    def neighbor(self, v: int, dim: int, sign: int) -> Optional[int]:
        """The neighbor of ``v`` in direction ``(dim, sign)``, or ``None``."""
        return self._slots[v].get((dim, sign))

    def labeled_neighbors(self, v: int) -> Dict[Tuple[int, int], int]:
        """All of ``v``'s neighbors keyed by ``(dim, sign)``."""
        return dict(self._slots[v])

    def is_labeled(self, u: int, v: int) -> bool:
        """Whether the edge ``{u, v}`` carries an orientation label."""
        return edge_key(u, v) in self._labels

    def edges_of_dimension(self, dim: int) -> List[Edge]:
        """All labeled edges of a given dimension, sorted."""
        return sorted(e for e, (d, _) in self._labels.items() if d == dim)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self, require_full: bool = True) -> None:
        """Check structural consistency.

        Parameters
        ----------
        require_full:
            If true, every node of degree exactly ``2k`` must have all
            ``2k`` directional slots filled, and every edge must be
            labeled.  Slot-uniqueness is enforced at construction already.

        Raises
        ------
        ValueError
            On the first violation found.
        """
        if not require_full:
            return
        for e in self.graph.edges():
            if e not in self._labels:
                raise ValueError(f"edge {e} is unlabeled")
        for v in self.graph.nodes():
            if self.graph.degree(v) == 2 * self.k and len(self._slots[v]) != 2 * self.k:
                raise ValueError(
                    f"full-degree node {v} has only {len(self._slots[v])} directions"
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Orientation(k={self.k}, labeled={len(self._labels)}/{self.graph.m})"


def orient_tree(graph: Graph, k: int, root: int = 0) -> Orientation:
    """Consistently orient a tree of maximum degree at most ``2k``.

    BFS from ``root``; each node hands its children the directional slots
    it has not used yet (the edge to its parent occupies one slot).  Any
    tree with maximum degree <= 2k admits such an orientation.
    """
    if not graph.is_tree():
        raise ValueError("orient_tree requires a tree")
    if graph.max_degree() > 2 * k:
        raise ValueError(f"maximum degree {graph.max_degree()} exceeds 2k = {2 * k}")
    labels: Dict[Edge, Tuple[int, int]] = {}
    all_slots = [(dim, sign) for dim in range(k) for sign in (1, -1)]
    used: Dict[int, set] = {root: set()}
    parent: Dict[int, int] = {root: -1}
    frontier = deque([root])
    while frontier:
        v = frontier.popleft()
        free = [s for s in all_slots if s not in used[v]]
        children = [u for u in graph.neighbors(v) if u != parent[v]]
        for u, (dim, sign) in zip(children, free):
            # Edge leaves v with the given sign: v is the low endpoint iff +1.
            labels[edge_key(u, v)] = (dim, v if sign == 1 else u)
            used[u] = {(dim, -sign)}
            parent[u] = v
            frontier.append(u)
    return Orientation(graph, k, labels)


def orient_torus_nd(graph: Graph, dims: "tuple[int, ...]") -> Orientation:
    """The natural orientation of :func:`~repro.graphs.generators.toroidal_grid_nd`.

    Dimension ``axis`` points from each node to its +1 neighbor along
    that axis (row-major coordinates).
    """
    import itertools as _it

    n = 1
    for d in dims:
        n *= d
    if graph.n != n:
        raise ValueError("graph size does not match the dimension product")
    strides = []
    acc = 1
    for d in reversed(dims):
        strides.append(acc)
        acc *= d
    strides.reverse()

    def index(coords):
        return sum(c * s for c, s in zip(coords, strides))

    labels: Dict[Edge, Tuple[int, int]] = {}
    for coords in _it.product(*(range(d) for d in dims)):
        v = index(coords)
        for axis in range(len(dims)):
            forward = list(coords)
            forward[axis] = (forward[axis] + 1) % dims[axis]
            labels[edge_key(v, index(tuple(forward)))] = (axis, v)
    return Orientation(graph, len(dims), labels)


def orient_torus(graph: Graph, rows: int, cols: int) -> Orientation:
    """The natural orientation of :func:`~repro.graphs.generators.toroidal_grid`.

    Dimension 0 runs along columns (R = next column), dimension 1 along
    rows (U = next row).
    """
    if graph.n != rows * cols:
        raise ValueError("graph size does not match rows * cols")
    labels: Dict[Edge, Tuple[int, int]] = {}
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            right = r * cols + (c + 1) % cols
            up = ((r + 1) % rows) * cols + c
            labels[edge_key(v, right)] = (0, v)
            labels[edge_key(v, up)] = (1, v)
    return Orientation(graph, 2, labels)
