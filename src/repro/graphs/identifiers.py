"""Identifier assignment schemes.

The LOCAL model gives nodes unique identifiers from ``{1, ..., n^c}``.
Lower-bound arguments care about *which* assignment the adversary picks:

* :func:`sequential_ids` — IDs exactly ``1..n`` in node order (the paper's
  Theorem 6 holds "even if identifiers are exactly in {1, ..., n}");
* :func:`random_permutation_ids` — a uniformly random bijection onto
  ``1..n`` (the randomized-ID coupling used in Claim 10);
* :func:`random_ids` — independent uniform draws from ``{1..n^c}``
  (may collide; the birthday bound of Claim 10 quantifies how often);
* :func:`sorted_by_bfs_ids` — IDs increase along a BFS order from a root
  (the "nodes placed in increasing order" adversary of Naor-Stockmeyer
  style order-invariance arguments);
* :func:`adversarial_interval_ids` — IDs forming one contiguous run that
  makes comparison-based algorithms see isomorphic ordered neighborhoods.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from .graph import Graph

__all__ = [
    "IdAssignment",
    "sequential_ids",
    "random_permutation_ids",
    "random_ids",
    "sorted_by_bfs_ids",
    "adversarial_interval_ids",
    "validate_ids",
]

#: An ID assignment is a plain list: ``ids[v]`` is the identifier of node v.
IdAssignment = List[int]


def sequential_ids(graph: Graph) -> IdAssignment:
    """IDs ``1..n`` in node order."""
    return [v + 1 for v in graph.nodes()]


def random_permutation_ids(graph: Graph, rng: Optional[random.Random] = None) -> IdAssignment:
    """A uniformly random bijection onto ``{1..n}``."""
    rng = rng or random.Random(0)
    ids = [v + 1 for v in graph.nodes()]
    rng.shuffle(ids)
    return ids


def random_ids(
    graph: Graph, c: int = 2, rng: Optional[random.Random] = None
) -> IdAssignment:
    """Independent uniform draws from ``{1 .. n^c}`` (collisions possible).

    This is the model used in Claim 10's coupling argument: anonymous
    randomized nodes can generate such IDs locally, and they are globally
    unique except with probability at most ``binom(n,2)/n^c``.
    """
    rng = rng or random.Random(0)
    space = max(1, graph.n**c)
    return [rng.randint(1, space) for _ in graph.nodes()]


def sorted_by_bfs_ids(graph: Graph, root: int = 0) -> IdAssignment:
    """IDs increasing along BFS layers from ``root`` (ties by node index).

    On a cycle or path this realizes the "increasing along the cycle"
    adversary that defeats order-invariant algorithms.
    """
    dist = graph.bfs_distances(root)
    if len(dist) != graph.n:
        raise ValueError("graph must be connected for a BFS ID order")
    order = sorted(graph.nodes(), key=lambda v: (dist[v], v))
    ids = [0] * graph.n
    for rank, v in enumerate(order):
        ids[v] = rank + 1
    return ids


def adversarial_interval_ids(graph: Graph, start: int = 1) -> IdAssignment:
    """IDs ``start, start+1, ...`` in node order — a contiguous interval.

    With a contiguous interval every local comparison pattern is realized
    somewhere, which is the worst case for comparison-based (order
    invariant) algorithms.
    """
    if start < 1:
        raise ValueError("identifiers must be positive")
    return [start + v for v in graph.nodes()]


def validate_ids(graph: Graph, ids: IdAssignment, c: Optional[int] = None) -> bool:
    """Whether ``ids`` is a valid assignment: positive, unique, and (if
    ``c`` is given) within ``{1 .. n^c}``."""
    if len(ids) != graph.n:
        return False
    if any(i < 1 for i in ids):
        return False
    if len(set(ids)) != len(ids):
        return False
    if c is not None and any(i > graph.n**c for i in ids):
        return False
    return True
