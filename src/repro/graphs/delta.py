"""Validated mutation batches (:class:`GraphDelta`) for frozen graphs.

The incremental workload mutates a *frozen* :class:`~repro.graphs.graph.
Graph` without ever touching the original object: a :class:`GraphDelta`
is an ordered batch of edge insertions / deletions / label updates that
is validated up front (by replaying it against the base's edge set) and
applied functionally — :meth:`GraphDelta.apply_to` returns a *new*
frozen graph, leaving the base and its cached CSR arrays untouched.

Port bookkeeping follows :meth:`Graph.add_edge
<repro.graphs.graph.Graph.add_edge>` exactly: an inserted edge occupies
the next free (highest) port at both endpoints, and a deleted edge
shifts every later port of its endpoints down by one (``list.remove``
semantics).  Because ops are *ordered*, inserting an edge and then
deleting it restores both adjacency rows bit-for-bit — the round-trip
property the incremental test suite pins.

The other half of the module is the *dirty-ball tracker*:
:meth:`GraphDelta.footprint` computes the set of nodes whose radius-t
view can possibly change, in time proportional to that set (two
multi-source BFS sweeps from the touched nodes — one over the old rows,
one over the new), never O(n).  Soundness rests on the paper's locality
argument: a radius-t view is a function of the ball ``B(v, t)`` and its
port structure, and every structural or label difference between the
old and new graph is confined to the touched nodes' rows, so any node
whose view changes has a touched node inside its old or its new ball.

See ``docs/INCREMENTAL.md`` for the delta model and the authoring
contract, and :class:`repro.core.incremental.IncrementalEngine` for the
engine that consumes deltas.
"""

from __future__ import annotations

import random
from typing import Any, Iterable, List, Optional, Sequence, Set, Tuple

from .graph import Edge, Graph, edge_key

__all__ = ["GraphDelta", "GraphDeltaError", "DELTA_OPS", "random_delta"]

#: The op vocabulary: ("add", u, v) / ("remove", u, v) insert or delete
#: the undirected edge {u, v}; ("set_id", v, value), ("set_input", v,
#: value) and ("set_randomness", v, value) rewrite one label entry.
DELTA_OPS = ("add", "remove", "set_id", "set_input", "set_randomness")

_EDGE_OPS = ("add", "remove")
_LABEL_OPS = ("set_id", "set_input", "set_randomness")


class GraphDeltaError(ValueError):
    """An invalid or stale delta: bad op, or applied to the wrong graph."""


class GraphDelta:
    """An ordered, validated batch of mutations against a frozen graph.

    Parameters
    ----------
    base:
        The frozen :class:`~repro.graphs.graph.Graph` the ops are
        expressed against.  Deltas never mutate it.
    ops:
        Iterable of op tuples from :data:`DELTA_OPS`.  Ops are validated
        by sequential replay: an ``("add", u, v)`` must not duplicate an
        edge present *at that point in the sequence*, a ``("remove", u,
        v)`` must delete one, and label targets must be in range.  Order
        matters for port bookkeeping, so ops are never deduplicated or
        reordered — ``add`` then ``remove`` of the same edge is a valid
        (and row-restoring) sequence.

    Raises
    ------
    GraphDeltaError
        If the base is not frozen or any op fails validation.
    """

    __slots__ = ("base", "ops", "_result", "_touched_rows", "_csr_mode")

    def __init__(self, base: Graph, ops: Iterable[Tuple[Any, ...]]):
        if not isinstance(base, Graph):
            raise GraphDeltaError(
                f"delta base must be a Graph, got {type(base).__name__}"
            )
        if not base.is_frozen:
            raise GraphDeltaError(
                "delta base must be frozen; call Graph.freeze() first "
                "(deltas are defined against an immutable snapshot)"
            )
        self.base = base
        self.ops: Tuple[Tuple[Any, ...], ...] = tuple(tuple(op) for op in ops)
        self._result: Optional[Graph] = None
        self._csr_mode: Optional[str] = None
        self._touched_rows = self._validate()

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _validate(self) -> Tuple[int, ...]:
        """Replay the ops against a copy of the base's edge set.

        Returns the sorted tuple of nodes whose adjacency *rows* change
        (edge-op endpoints).  Label-op targets are tracked separately —
        they join the footprint but leave the rows alone.
        """
        n = self.base.n
        edges: Set[Edge] = set(self.base.edge_set())
        touched: Set[int] = set()
        for i, op in enumerate(self.ops):
            if not op or op[0] not in DELTA_OPS:
                raise GraphDeltaError(
                    f"op {i}: unknown delta op {op!r}; expected one of {DELTA_OPS}"
                )
            kind = op[0]
            if len(op) != 3:
                raise GraphDeltaError(
                    f"op {i}: {kind!r} takes exactly 2 operands, got {op!r}"
                )
            if kind in _EDGE_OPS:
                u, v = op[1], op[2]
                if not (isinstance(u, int) and isinstance(v, int)):
                    raise GraphDeltaError(f"op {i}: endpoints must be ints, got {op!r}")
                if not (0 <= u < n and 0 <= v < n):
                    raise GraphDeltaError(f"op {i}: edge ({u}, {v}) out of range for n={n}")
                if u == v:
                    raise GraphDeltaError(f"op {i}: self-loop at node {u} is not allowed")
                key = edge_key(u, v)
                if kind == "add":
                    if key in edges:
                        raise GraphDeltaError(f"op {i}: duplicate edge ({u}, {v})")
                    edges.add(key)
                else:
                    if key not in edges:
                        raise GraphDeltaError(
                            f"op {i}: cannot remove missing edge ({u}, {v})"
                        )
                    edges.discard(key)
                touched.add(u)
                touched.add(v)
            else:
                v = op[1]
                if not isinstance(v, int):
                    raise GraphDeltaError(f"op {i}: label target must be an int, got {op!r}")
                if not 0 <= v < n:
                    raise GraphDeltaError(f"op {i}: node {v} out of range for n={n}")
        return tuple(sorted(touched))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Node count (unchanged by deltas — node set is fixed)."""
        return self.base.n

    @property
    def csr_mode(self) -> Optional[str]:
        """How the result's CSR layout was produced, once built.

        ``"patch"`` (in-place splice of the base's arrays),
        ``"recompile"`` (delta too large, full rebuild), ``"lazy"``
        (base had no compiled layout; the result compiles on demand),
        or ``None`` if :meth:`apply_to` has not run yet.
        """
        return self._csr_mode

    def touched_nodes(self) -> Tuple[int, ...]:
        """Sorted nodes directly named by any op (edge endpoints + label targets)."""
        touched = set(self._touched_rows)
        for op in self.ops:
            if op[0] in _LABEL_OPS:
                touched.add(op[1])
        return tuple(sorted(touched))

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------
    def apply_to(self, graph: Graph) -> Graph:
        """Apply the delta to ``graph`` and return the mutated *new* graph.

        ``graph`` must be the exact object the delta was built against
        (``graph is self.base``) — ports are order-sensitive, so a delta
        replayed against any other graph, even an equal one, could
        silently produce a different port numbering.  A stale handle
        raises :class:`GraphDeltaError` instead.

        The result is frozen, shares the base's untouched adjacency
        rows, and — when the base has a compiled CSR layout — carries a
        patched (or recompiled) CSR so downstream engines never pay a
        from-scratch compile for a small delta.  The result is cached:
        repeated calls return the same object, which lets sequential
        delta chains share graph identity.
        """
        if graph is not self.base:
            raise GraphDeltaError(
                "stale delta handle: this delta was built against a different "
                "Graph object; rebuild the delta against the graph you are "
                "mutating (ports are order-sensitive, so replay against an "
                "equal-but-distinct graph is unsafe)"
            )
        if self._result is None:
            self._result = self._build()
        return self._result

    def apply(self) -> Graph:
        """Shorthand for ``apply_to(self.base)``."""
        return self.apply_to(self.base)

    def _build(self) -> Graph:
        base = self.base
        rows = base.adjacency_rows()
        touched = self._touched_rows
        new_rows: List[List[int]] = list(rows)  # share untouched row objects
        for v in touched:
            new_rows[v] = list(rows[v])
        edges: Set[Edge] = set(base.edge_set())
        for op in self.ops:
            if op[0] == "add":
                u, v = op[1], op[2]
                new_rows[u].append(v)
                new_rows[v].append(u)
                edges.add(edge_key(u, v))
            elif op[0] == "remove":
                u, v = op[1], op[2]
                new_rows[u].remove(v)
                new_rows[v].remove(u)
                edges.discard(edge_key(u, v))
        out = Graph.__new__(Graph)
        out._n = base.n
        out._adj = new_rows
        out._edge_set = edges
        out._frozen = True
        out._csr = None
        base_csr = base._csr
        if base_csr is None:
            self._csr_mode = "lazy"
        else:
            out._csr, self._csr_mode = base_csr.patched(new_rows, touched)
        return out

    def apply_to_labels(
        self,
        ids: Optional[Sequence[int]] = None,
        inputs: Optional[Sequence[Any]] = None,
        randomness: Optional[Sequence[Any]] = None,
    ) -> Tuple[Optional[List[int]], Optional[List[Any]], Optional[List[Any]]]:
        """Apply the label ops to copies of the given label sequences.

        Returns ``(ids, inputs, randomness)`` as new lists (or ``None``
        where the input was ``None``).  A ``set_*`` op whose target
        labeling is absent raises :class:`GraphDeltaError` — the delta
        was built for a labeled run but applied to an unlabeled one.
        """
        new_ids = list(ids) if ids is not None else None
        new_inputs = list(inputs) if inputs is not None else None
        new_rand = list(randomness) if randomness is not None else None
        for i, op in enumerate(self.ops):
            if op[0] == "set_id":
                if new_ids is None:
                    raise GraphDeltaError(f"op {i}: set_id requires an ids labeling")
                new_ids[op[1]] = op[2]
            elif op[0] == "set_input":
                if new_inputs is None:
                    raise GraphDeltaError(f"op {i}: set_input requires an inputs labeling")
                new_inputs[op[1]] = op[2]
            elif op[0] == "set_randomness":
                if new_rand is None:
                    raise GraphDeltaError(
                        f"op {i}: set_randomness requires a randomness labeling"
                    )
                new_rand[op[1]] = op[2]
        return new_ids, new_inputs, new_rand

    # ------------------------------------------------------------------
    # Dirty-ball tracking
    # ------------------------------------------------------------------
    def footprint(self, radius: int) -> List[int]:
        """Nodes whose radius-``radius`` view can change, sorted.

        The union of the radius-``radius`` balls around the touched
        nodes in the *old* graph and in the *new* graph.  Soundness
        (pinned by the hypothesis suite): a view is a function of the
        ball and its port/label structure; every row or label that
        differs between old and new belongs to a touched node, so a
        node whose view differs must contain a touched node in its old
        or its new ball — i.e. lie within ``radius`` of one in at least
        one of the two graphs.

        Cost is proportional to the footprint (two truncated
        multi-source BFS sweeps), never O(n).
        """
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        touched = self.touched_nodes()
        if not touched:
            return []
        result = self.apply_to(self.base)
        seen: Set[int] = set(touched)
        for g in (self.base, result):
            rows = g.adjacency_rows()
            visited: Set[int] = set(touched)
            frontier: List[int] = list(touched)
            for _ in range(radius):
                if not frontier:
                    break
                nxt: List[int] = []
                for v in frontier:
                    for u in rows[v]:
                        if u not in visited:
                            visited.add(u)
                            nxt.append(u)
                frontier = nxt
            seen.update(visited)
        return sorted(seen)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GraphDelta(n={self.base.n}, ops={len(self.ops)})"


def random_delta(
    graph: Graph,
    rng: random.Random,
    ids: Optional[Sequence[int]] = None,
    inputs: Optional[Sequence[Any]] = None,
    randomness: Optional[Sequence[Any]] = None,
    max_ops: int = 2,
) -> Optional[GraphDelta]:
    """Draw a random valid :class:`GraphDelta` against ``graph``.

    Ops are generated sequentially against a working copy of the edge
    set, so every draw is valid by construction: edge additions sample
    a current non-edge (skipped on complete graphs), removals sample a
    current edge, id mutations swap two entries of ``ids`` (preserving
    uniqueness), and randomness/input mutations rewrite one entry.
    Returns ``None`` when no op kind is feasible (e.g. an edgeless
    1-node graph with no labelings).

    Determinism contract: the sequence of ``rng`` calls per op kind is
    part of the replayable fuzzing surface and is golden-pinned by
    ``tests/test_seed_stability.py`` — NEVER reorder or add draws here
    without regenerating those pins deliberately.
    """
    if max_ops < 1:
        raise ValueError(f"max_ops must be >= 1, got {max_ops}")
    n = graph.n
    edges: Set[Edge] = set(graph.edge_set())
    complete = n * (n - 1) // 2
    work_ids = list(ids) if ids is not None else None
    ops: List[Tuple[Any, ...]] = []
    n_ops = rng.randint(1, max_ops)
    for _ in range(n_ops):
        kinds: List[str] = []
        if len(edges) < complete:
            kinds.append("add")
        if edges:
            kinds.append("remove")
        if work_ids is not None and n >= 2:
            kinds.append("swap-ids")
        if inputs is not None and n >= 1:
            kinds.append("set_input")
        if randomness is not None and n >= 1:
            kinds.append("set_randomness")
        if not kinds:
            break
        kind = rng.choice(kinds)
        if kind == "add":
            edge = _sample_non_edge(n, edges, rng)
            ops.append(("add", edge[0], edge[1]))
            edges.add(edge)
        elif kind == "remove":
            edge = rng.choice(sorted(edges))
            ops.append(("remove", edge[0], edge[1]))
            edges.discard(edge)
        elif kind == "swap-ids":
            u, v = rng.sample(range(n), 2)
            assert work_ids is not None
            ops.append(("set_id", u, work_ids[v]))
            ops.append(("set_id", v, work_ids[u]))
            work_ids[u], work_ids[v] = work_ids[v], work_ids[u]
        elif kind == "set_input":
            v = rng.randrange(n)
            ops.append(("set_input", v, rng.getrandbits(8)))
        else:  # set_randomness
            v = rng.randrange(n)
            ops.append(("set_randomness", v, rng.getrandbits(32)))
    if not ops:
        return None
    return GraphDelta(graph, ops)


def _sample_non_edge(n: int, edges: Set[Edge], rng: random.Random) -> Edge:
    """Sample a uniform-ish current non-edge; caller guarantees one exists."""
    for _ in range(32):
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v:
            key = edge_key(u, v)
            if key not in edges:
                return key
    # Dense graph: enumerate deterministically instead of looping forever.
    non_edges = [
        (u, v) for u in range(n) for v in range(u + 1, n) if (u, v) not in edges
    ]
    return non_edges[rng.randrange(len(non_edges))]
