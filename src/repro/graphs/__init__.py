"""Graph substrate: port-numbered graphs, generators, orientations, IDs."""

from .graph import Graph, Edge, edge_key
from .csr import CSRGraph
from .delta import GraphDelta, GraphDeltaError, random_delta
from .generators import (
    path,
    cycle,
    symmetric_cycle,
    star,
    complete_graph,
    caterpillar,
    balanced_regular_tree,
    balanced_regular_tree_size,
    regular_tree_of_depth_at_least,
    toroidal_grid,
    toroidal_grid_nd,
    hypercube,
    random_regular_graph,
    random_regular_high_girth,
    random_tree,
    lemma18_pair,
)
from .orientation import Orientation, orient_tree, orient_torus, orient_torus_nd, direction_name
from .transforms import line_graph, graph_power
from .identifiers import (
    IdAssignment,
    sequential_ids,
    random_permutation_ids,
    random_ids,
    sorted_by_bfs_ids,
    adversarial_interval_ids,
    validate_ids,
)

__all__ = [
    "Graph",
    "CSRGraph",
    "GraphDelta",
    "GraphDeltaError",
    "random_delta",
    "Edge",
    "edge_key",
    "path",
    "cycle",
    "symmetric_cycle",
    "star",
    "complete_graph",
    "caterpillar",
    "balanced_regular_tree",
    "balanced_regular_tree_size",
    "regular_tree_of_depth_at_least",
    "toroidal_grid",
    "toroidal_grid_nd",
    "hypercube",
    "random_regular_graph",
    "random_regular_high_girth",
    "random_tree",
    "lemma18_pair",
    "Orientation",
    "orient_tree",
    "orient_torus",
    "orient_torus_nd",
    "direction_name",
    "line_graph",
    "graph_power",
    "IdAssignment",
    "sequential_ids",
    "random_permutation_ids",
    "random_ids",
    "sorted_by_bfs_ids",
    "adversarial_interval_ids",
    "validate_ids",
]
