"""Graph generators for the LOCAL-model laboratory.

Every instance family the paper's arguments touch is constructible here:

* cycles and paths (the degree-2 cases; Linial's setting),
* balanced Delta-regular trees (the paper's worst-case instances),
* random Delta-regular graphs with a girth guarantee (the "regular
  high-girth graphs" of the abstract),
* toroidal grids (the consistently oriented 4-regular setting of
  Section 5, without leaves),
* caterpillars and stars (odd irregularity-rich instances for P*),
* the indistinguishable pair (T, T') used in the proof of Lemma 18.

All generators return frozen :class:`~repro.graphs.graph.Graph` objects.

The families experiment plans can name are registered in
:data:`repro.core.registry.GRAPH_FAMILIES` at the definition site; the
``params`` metadata names the keys each factory consumes from a cell's
parameter dict (see :func:`repro.core.registry.build_graph`).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..core.registry import register_graph_family
from .graph import Graph, edge_key
from .implicit import ImplicitCycle, ImplicitPath, ImplicitTorus, ImplicitTree

__all__ = [
    "path",
    "cycle",
    "symmetric_cycle",
    "star",
    "complete_graph",
    "caterpillar",
    "balanced_regular_tree",
    "balanced_regular_tree_size",
    "regular_tree_of_depth_at_least",
    "toroidal_grid",
    "toroidal_grid_nd",
    "hypercube",
    "random_regular_graph",
    "random_regular_high_girth",
    "random_tree",
    "lemma18_pair",
]


@register_graph_family(
    "path", params=("n",), implicit=True, implicit_builder=ImplicitPath
)
def path(n: int) -> Graph:
    """Path with ``n`` nodes ``0 - 1 - ... - (n-1)``."""
    if n < 1:
        raise ValueError("path needs at least 1 node")
    return Graph(n, ((i, i + 1) for i in range(n - 1))).freeze()


@register_graph_family(
    "cycle", params=("n",), implicit=True, implicit_builder=ImplicitCycle
)
def cycle(n: int) -> Graph:
    """Cycle with ``n >= 3`` nodes."""
    if n < 3:
        raise ValueError("cycle needs at least 3 nodes")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return Graph(n, edges).freeze()


def symmetric_cycle(n: int) -> Graph:
    """A cycle whose port numbering is rotation-invariant.

    Every node's port 0 leads to its predecessor and port 1 to its
    successor, with no exceptional node — so in an *anonymous* run all
    radius-t views are identical, and any deterministic anonymous
    algorithm must output one constant: the executable face of "if all
    nodes start in the same state ... ad infinitum" from the paper's
    introduction.  (The plain :func:`cycle` breaks the symmetry at node
    0, whose wrap-around edge lands on the other port.)
    """
    if n < 3:
        raise ValueError("cycle needs at least 3 nodes")
    adjacency = [[(i - 1) % n, (i + 1) % n] for i in range(n)]
    return Graph.from_adjacency(adjacency).freeze()


@register_graph_family("star", params=("leaves",))
def star(leaves: int) -> Graph:
    """Star: node 0 joined to ``leaves`` leaf nodes."""
    if leaves < 1:
        raise ValueError("star needs at least 1 leaf")
    return Graph(leaves + 1, ((0, i) for i in range(1, leaves + 1))).freeze()


@register_graph_family("clique", params=("n",))
def complete_graph(n: int) -> Graph:
    """Complete graph on ``n`` nodes."""
    g = Graph(n)
    for u in range(n):
        for v in range(u + 1, n):
            g.add_edge(u, v)
    return g.freeze()


@register_graph_family("caterpillar", params=("spine", "legs_per_node"))
def caterpillar(spine: int, legs_per_node: int) -> Graph:
    """A path of ``spine`` nodes, each with ``legs_per_node`` pendant leaves."""
    if spine < 1:
        raise ValueError("caterpillar needs a spine of at least 1 node")
    if legs_per_node < 0:
        raise ValueError("legs_per_node must be non-negative")
    n = spine + spine * legs_per_node
    g = Graph(n)
    for i in range(spine - 1):
        g.add_edge(i, i + 1)
    leaf = spine
    for i in range(spine):
        for _ in range(legs_per_node):
            g.add_edge(i, leaf)
            leaf += 1
    return g.freeze()


def balanced_regular_tree_size(delta: int, depth: int) -> int:
    """Number of nodes of the balanced Delta-regular tree of the given depth.

    The root has ``delta`` children; every internal node has ``delta - 1``
    children; leaves sit at distance ``depth`` from the root.
    """
    if delta < 2:
        raise ValueError("delta must be at least 2")
    if depth < 0:
        raise ValueError("depth must be non-negative")
    if depth == 0:
        return 1
    if delta == 2:
        return 2 * depth + 1
    total = 1
    layer = delta
    for _ in range(depth):
        total += layer
        layer *= delta - 1
    return total


@register_graph_family(
    "tree",
    params=("delta", "depth"),
    implicit=True,
    implicit_builder=ImplicitTree,
)
def balanced_regular_tree(delta: int, depth: int) -> Graph:
    """Balanced Delta-regular tree: every non-leaf has degree ``delta``.

    Node 0 is the root (the tree's center).  Nodes are numbered in BFS
    order, so layer boundaries are contiguous.  Every node at distance
    less than ``depth`` from the root has degree exactly ``delta``; nodes
    at distance ``depth`` are leaves.
    """
    n = balanced_regular_tree_size(delta, depth)
    g = Graph(n)
    if depth == 0:
        return g.freeze()
    next_id = 1
    frontier: List[int] = [0]
    for layer in range(depth):
        new_frontier: List[int] = []
        for v in frontier:
            children = delta if layer == 0 else delta - 1
            for _ in range(children):
                g.add_edge(v, next_id)
                new_frontier.append(next_id)
                next_id += 1
        frontier = new_frontier
    return g.freeze()


def regular_tree_of_depth_at_least(delta: int, min_nodes: int) -> Tuple[Graph, int]:
    """Smallest balanced Delta-regular tree with at least ``min_nodes`` nodes.

    Returns ``(tree, depth)``.
    """
    depth = 0
    while balanced_regular_tree_size(delta, depth) < min_nodes:
        depth += 1
    return balanced_regular_tree(delta, depth), depth


@register_graph_family(
    "torus",
    params=("rows", "cols"),
    implicit=True,
    implicit_builder=ImplicitTorus,
)
def toroidal_grid(rows: int, cols: int) -> Graph:
    """The ``rows x cols`` torus: 4-regular, leafless, consistently orientable.

    Both dimensions must be at least 3 so the graph stays simple.  Node
    ``(r, c)`` is ``r * cols + c``.
    """
    if rows < 3 or cols < 3:
        raise ValueError("toroidal grid needs both dimensions >= 3")
    g = Graph(rows * cols)
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            right = r * cols + (c + 1) % cols
            down = ((r + 1) % rows) * cols + c
            g.add_edge(v, right)
            g.add_edge(v, down)
    return g.freeze()


def toroidal_grid_nd(dims: Tuple[int, ...]) -> Graph:
    """The d-dimensional torus: regular of degree ``2 * len(dims)``.

    Every dimension must be at least 3 (simplicity).  Node coordinates
    map to indices in row-major order.  With
    :func:`~repro.graphs.orientation.orient_torus_nd` this provides the
    2k-regular leafless oriented substrate for any k — the Section 7
    setting at Delta = 6, 8, ... on finite networks.
    """
    if len(dims) < 1:
        raise ValueError("need at least one dimension")
    if any(d < 3 for d in dims):
        raise ValueError("every dimension must be at least 3")
    n = 1
    for d in dims:
        n *= d
    strides = []
    acc = 1
    for d in reversed(dims):
        strides.append(acc)
        acc *= d
    strides.reverse()

    def index(coords: Tuple[int, ...]) -> int:
        return sum(c * s for c, s in zip(coords, strides))

    import itertools as _it

    g = Graph(n)
    for coords in _it.product(*(range(d) for d in dims)):
        v = index(coords)
        for axis in range(len(dims)):
            forward = list(coords)
            forward[axis] = (forward[axis] + 1) % dims[axis]
            g.add_edge(v, index(tuple(forward)))
    return g.freeze()


@register_graph_family("hypercube", params=("dim",))
def hypercube(dim: int) -> Graph:
    """The ``dim``-dimensional hypercube (regular of degree ``dim``)."""
    if dim < 1:
        raise ValueError("hypercube dimension must be >= 1")
    n = 1 << dim
    g = Graph(n)
    for v in range(n):
        for b in range(dim):
            u = v ^ (1 << b)
            if v < u:
                g.add_edge(v, u)
    return g.freeze()


@register_graph_family("random-regular", params=("n", "d"))
def random_regular_graph(
    n: int, d: int, rng: Optional[random.Random] = None, max_tries: int = 5000
) -> Graph:
    """A uniform-ish random simple ``d``-regular graph via the pairing model.

    Registered *without* an ``implicit_builder``: the pairing model has
    no closed-form neighborhood, so ``build_graph(..., implicit=True)``
    on this family raises a ``RegistryError`` naming this materialized
    factory as the fallback.

    Retries the configuration-model pairing until the result is simple.

    Raises
    ------
    ValueError
        If ``n * d`` is odd or ``d >= n``, or no simple pairing is found
        within ``max_tries`` attempts.
    """
    if d < 0 or n < 1:
        raise ValueError("need n >= 1 and d >= 0")
    if (n * d) % 2 != 0:
        raise ValueError(f"n*d must be even, got n={n}, d={d}")
    if d >= n:
        raise ValueError(f"degree {d} impossible on {n} nodes")
    rng = rng or random.Random(0)
    stubs_template = [v for v in range(n) for _ in range(d)]
    for _ in range(max_tries):
        stubs = stubs_template[:]
        rng.shuffle(stubs)
        edges = set()
        ok = True
        for i in range(0, len(stubs), 2):
            u, v = stubs[i], stubs[i + 1]
            if u == v or edge_key(u, v) in edges:
                ok = False
                break
            edges.add(edge_key(u, v))
        if ok:
            return Graph(n, sorted(edges)).freeze()
    raise ValueError(f"no simple {d}-regular pairing found in {max_tries} tries")


def random_regular_high_girth(
    n: int,
    d: int,
    girth_at_least: int,
    rng: Optional[random.Random] = None,
    max_tries: int = 500,
) -> Graph:
    """A random simple ``d``-regular graph with girth at least ``girth_at_least``.

    Rejection-samples :func:`random_regular_graph`.  High girth gets
    exponentially rare as ``girth_at_least`` grows, so keep it modest
    (girth 5-6 at a few hundred nodes is fast).
    """
    rng = rng or random.Random(0)
    for attempt in range(max_tries):
        g = random_regular_graph(n, d, rng=random.Random(rng.getrandbits(64)))
        girth = g.girth(cutoff=girth_at_least - 1)
        if girth is None:
            return g
    raise ValueError(
        f"no {d}-regular graph on {n} nodes with girth >= {girth_at_least} "
        f"found in {max_tries} tries"
    )


def random_tree(n: int, rng: Optional[random.Random] = None) -> Graph:
    """A uniformly random labeled tree (via a random Prüfer sequence)."""
    if n < 1:
        raise ValueError("tree needs at least 1 node")
    if n == 1:
        return Graph(1).freeze()
    if n == 2:
        return Graph(2, [(0, 1)]).freeze()
    rng = rng or random.Random(0)
    prufer = [rng.randrange(n) for _ in range(n - 2)]
    degree = [1] * n
    for v in prufer:
        degree[v] += 1
    g = Graph(n)
    import heapq

    leaves = [v for v in range(n) if degree[v] == 1]
    heapq.heapify(leaves)
    for v in prufer:
        leaf = heapq.heappop(leaves)
        g.add_edge(leaf, v)
        degree[v] -= 1
        if degree[v] == 1:
            heapq.heappush(leaves, v)
    u = heapq.heappop(leaves)
    w = heapq.heappop(leaves)
    g.add_edge(u, w)
    return g.freeze()


def lemma18_pair(delta: int, depth: int) -> Tuple[Graph, Graph, int]:
    """The indistinguishable tree pair (T, T') from the proof of Lemma 18.

    ``T`` is the balanced Delta-regular tree of the given depth with center
    ``v = 0``.  ``T'`` agrees with ``T`` on the ball of radius ``depth - 1``
    around the center, but for each node ``u`` at distance ``depth - 1``
    from the center, one of its leaf children is detached and re-attached
    as a child of one of ``u``'s remaining leaf children.  Hence in ``T'``
    every node at distance ``depth - 1`` has degree ``delta - 1``, while
    the two graphs are identical within radius ``depth - 2`` of the center
    (so any algorithm running in fewer than ``depth - 1`` rounds behaves
    identically at the center on both inputs).

    Returns ``(T, T_prime, center)`` with ``center == 0``; ``|V(T)| ==
    |V(T')|``.
    """
    if delta < 3:
        raise ValueError("Lemma 18 needs delta > 2")
    if depth < 2:
        raise ValueError("the construction needs depth >= 2")
    t = balanced_regular_tree(delta, depth)

    # Rebuild T' edge by edge. Identify each depth-(depth-1) node, pick its
    # first leaf child, and re-home that leaf under the second leaf child.
    dist = t.bfs_distances(0)
    edges = set(t.edges())
    for u in t.nodes():
        if dist[u] != depth - 1:
            continue
        leaf_children = [w for w in t.neighbors(u) if dist[w] == depth]
        if len(leaf_children) < 2:
            raise ValueError("construction needs at least two leaf children per node")
        moved, new_parent = leaf_children[0], leaf_children[1]
        edges.remove(edge_key(u, moved))
        edges.add(edge_key(new_parent, moved))
    t_prime = Graph(t.n, sorted(edges)).freeze()
    return t, t_prime, 0
