"""Implicit (closed-form) graph families for the n >= 10^6 regime.

The paper's hardness claims are asymptotic, but a materialized
:class:`~repro.graphs.graph.Graph` holds one Python list per node, which
caps experiments near n ~ 5000.  For the symmetric families the paper
actually argues about — cycles, paths, toroidal grids, and balanced
Delta-regular trees — every radius-t ball has a *closed form*: the
port-ordered neighbor row of any node is computable in O(degree) from
the node index alone, so the full graph never needs to exist.

:class:`ImplicitGraph` is the seam: a symbolic family handle carrying
``n``, degree/dimension parameters, a closed-form ``neighbors(v)``
(byte-for-byte the port order the registered generator would produce),
and a closed-form *strata* decomposition grouping nodes whose anonymous
balls are guaranteed identical.  Everything above the seam is duck-typed
against :class:`~repro.graphs.graph.Graph`, so the reference per-entity
paths (``gather_view``, ``view_signature``) run on the handle unchanged;
the batched paths synthesize CSR *windows* on demand through
:meth:`CSRGraph.synthesize_window
<repro.graphs.csr.CSRGraph.synthesize_window>` (see
:class:`~repro.local_model.batch_views.ImplicitBallExpander`).

Memory model: operations whose output or working set is O(n) — full CSR
synthesis, edge enumeration, full materialization, per-node strata —
are guarded by :attr:`ImplicitGraph.materialize_limit` and raise
:class:`ImplicitMaterializeError` beyond it.  Ball windows and class
multiplicity counts stay O(distinct classes), which is O(1) per radius
on cycles/paths/tori and O(depth) on balanced trees.  See
``docs/IMPLICIT.md`` for the family catalog and the bit-identity
contract.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "ImplicitGraph",
    "ImplicitMaterializeError",
    "ImplicitCycle",
    "ImplicitPath",
    "ImplicitTorus",
    "ImplicitTree",
    "implicit_tree_of_size_at_least",
]


class ImplicitMaterializeError(RuntimeError):
    """An operation on an implicit graph would materialize O(n) state.

    Raised by the anti-materialization tripwire
    (:meth:`ImplicitGraph._guard`): any code path that silently turns a
    10^6-node implicit family back into per-node Python state fails
    loudly instead of blowing the memory budget (the CI smoke step runs
    the implicit experiments under an RSS ceiling for exactly this).
    """


class _ImplicitRows:
    """Lazy port-ordered adjacency rows over an implicit graph.

    Duck-types the sequence contract of :meth:`Graph.adjacency_rows
    <repro.graphs.graph.Graph.adjacency_rows>`: ``len``, integer
    indexing, and iteration (via the old sequence protocol — indexing
    raises :class:`IndexError` past ``n``, which also terminates
    ``iter``).  Rows are computed on access, so holding this object
    costs O(1).
    """

    __slots__ = ("_graph",)

    def __init__(self, graph: "ImplicitGraph"):
        self._graph = graph

    def __len__(self) -> int:
        return self._graph.n

    def __getitem__(self, v: int) -> Tuple[int, ...]:
        if not 0 <= v < self._graph.n:
            raise IndexError(f"node {v} out of range for n={self._graph.n}")
        return self._graph.neighbors(v)


class ImplicitGraph:
    """A graph family represented symbolically (never fully in memory).

    Subclasses provide the closed forms: :meth:`_row` (the port-ordered
    neighbor tuple of one node, matching the registered generator
    byte-for-byte), the counting properties ``n`` / ``m`` /
    ``max_degree`` / ``min_degree``, :meth:`strata` (groups of nodes
    with provably identical anonymous balls), and :meth:`_materialize`
    (the generator twin, for the guarded small-n parity paths).

    The public query surface duck-types
    :class:`~repro.graphs.graph.Graph` — ``nodes`` / ``neighbors`` /
    ``degree`` / ``port_to`` / ``endpoint`` / ``has_edge`` /
    ``adjacency_rows`` / ``bfs_distances`` — so the reference view
    gatherers and signatures run on the handle unchanged.  The handle is
    always frozen (there is nothing to mutate) and pickles as its
    constructor arguments, so the sharded engine can ship it to workers
    for pennies.
    """

    #: Class marker the layout resolver and the engines key off.
    is_implicit = True

    #: Registry family name of the materialized twin (set per subclass).
    family = "implicit"

    #: Node count above which O(n) operations (full CSR synthesis,
    #: ``edges()``, ``materialized()``, per-node strata) raise
    #: :class:`ImplicitMaterializeError`.  Large enough for every
    #: parity/conformance overlap run, small enough that the guard
    #: trips long before a 10^6-node experiment could swamp memory.
    materialize_limit = 200_000

    def __init__(self) -> None:
        self._neighbor_cache: Dict[int, Tuple[int, ...]] = {}
        self._csr: Optional[Any] = None
        self._materialized: Optional[Any] = None
        self._expander: Optional[Any] = None

    # -- closed forms every family must provide -------------------------
    def _row(self, v: int) -> Tuple[int, ...]:
        """Port-ordered neighbors of ``v`` (closed form; no bounds check)."""
        raise NotImplementedError

    def _ctor_args(self) -> Tuple[Any, ...]:
        """Constructor arguments, for pickling and ``repr``."""
        raise NotImplementedError

    def _materialize(self) -> Any:
        """Build the materialized generator twin (unguarded; see
        :meth:`materialized`)."""
        raise NotImplementedError

    @property
    def n(self) -> int:
        """Number of nodes (closed form)."""
        raise NotImplementedError

    @property
    def m(self) -> int:
        """Number of undirected edges (closed form)."""
        raise NotImplementedError

    def max_degree(self) -> int:
        """Maximum degree over all nodes (closed form)."""
        raise NotImplementedError

    def min_degree(self) -> int:
        """Minimum degree over all nodes (closed form)."""
        raise NotImplementedError

    # -- guard ----------------------------------------------------------
    @property
    def can_materialize(self) -> bool:
        """Whether O(n) operations are allowed at this size."""
        return self.n <= self.materialize_limit

    def _guard(self, operation: str) -> None:
        """Raise unless ``operation`` (an O(n) path) fits the limit."""
        if not self.can_materialize:
            raise ImplicitMaterializeError(
                f"{operation} on implicit {self.family!r} with n={self.n} "
                f"would materialize O(n) state "
                f"(materialize_limit={self.materialize_limit}); use the "
                f"window/strata paths (class_counts, ball windows) instead "
                f"— see docs/IMPLICIT.md"
            )

    # -- Graph-compatible queries ---------------------------------------
    @property
    def is_frozen(self) -> bool:
        """Always ``True``: an implicit family has nothing to mutate."""
        return True

    def freeze(self) -> "ImplicitGraph":
        """No-op for API compatibility; returns ``self`` (idempotent)."""
        return self

    def nodes(self) -> range:
        """All nodes, as a range."""
        return range(self.n)

    def neighbors(self, v: int) -> Tuple[int, ...]:
        """Neighbors of ``v`` in port order (closed form, memoized).

        The memo only ever holds rows actually queried — ball windows at
        large n touch O(window) rows, so the cache stays tiny.
        """
        row = self._neighbor_cache.get(v)
        if row is None:
            if not 0 <= v < self.n:
                raise IndexError(f"node {v} out of range for n={self.n}")
            row = self._row(v)
            self._neighbor_cache[v] = row
        return row

    def degree(self, v: int) -> int:
        """Degree of node ``v``."""
        return len(self.neighbors(v))

    def is_regular(self, d: Optional[int] = None) -> bool:
        """Whether every node has the same degree (equal to ``d`` if given)."""
        if self.n == 0:
            return True
        if self.max_degree() != self.min_degree():
            return False
        return d is None or self.max_degree() == d

    def adjacency_rows(self) -> _ImplicitRows:
        """Lazy port-ordered rows (O(1) to hold; rows computed on access)."""
        return _ImplicitRows(self)

    def port_to(self, v: int, u: int) -> int:
        """The port of ``v`` whose edge leads to ``u``.

        Raises
        ------
        ValueError
            If ``u`` is not a neighbor of ``v`` (same contract and
            message as :meth:`Graph.port_to
            <repro.graphs.graph.Graph.port_to>`).
        """
        try:
            return self.neighbors(v).index(u)
        except ValueError:
            raise ValueError(f"{u} is not a neighbor of {v}") from None

    def endpoint(self, v: int, port: int) -> int:
        """The node at the other end of port ``port`` of node ``v``."""
        return self.neighbors(v)[port]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``{u, v}`` is present."""
        if not (0 <= u < self.n and 0 <= v < self.n):
            return False
        return u in self.neighbors(v)

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Canonical edge keys in sorted order (guarded: O(m) output)."""
        self._guard("edges() enumeration")
        for v in range(self.n):
            for u in sorted(u for u in self.neighbors(v) if u > v):
                yield (v, u)

    def bfs_distances(
        self, source: int, cutoff: Optional[int] = None
    ) -> Dict[int, int]:
        """Hop distances from ``source`` (guarded when ``cutoff=None``).

        With a cutoff the cost is O(ball volume); without one the walk
        would touch every node, so it trips the materialization guard at
        large n.
        """
        if cutoff is None:
            self._guard("bfs_distances() without a cutoff")
        dist = {source: 0}
        frontier = [source]
        d = 0
        while frontier and (cutoff is None or d < cutoff):
            nxt: List[int] = []
            for v in frontier:
                for u in self.neighbors(v):
                    if u not in dist:
                        dist[u] = d + 1
                        nxt.append(u)
            frontier = nxt
            d += 1
        return dist

    # -- closed-form labelings ------------------------------------------
    def sequential_id(self, v: int) -> int:
        """The closed-form twin of ``experiments.sequential_ids``: node
        ``v`` carries identifier ``v + 1``."""
        return v + 1

    # -- windows and strata (the O(classes) machinery) ------------------
    def window(
        self, sources: Sequence[int], radius: int
    ) -> Tuple[List[int], List[int]]:
        """Ball window of ``sources``: ``(core, boundary)`` node lists.

        ``core`` holds every node within distance ``radius`` of some
        source (in multi-source BFS discovery order, sources first in
        given order); ``boundary`` the ring at distance exactly
        ``radius + 1``.  Core rows reference only core+boundary nodes,
        which is precisely the invariant :meth:`CSRGraph.synthesize_window
        <repro.graphs.csr.CSRGraph.synthesize_window>` needs to hand the
        batched expander a self-contained sub-CSR.  Cost is O(window
        volume), independent of ``n``.
        """
        if radius < 0:
            raise ValueError("radius must be non-negative")
        dist: Dict[int, int] = {}
        order: List[int] = []
        frontier: List[int] = []
        for v in sources:
            if v not in dist:
                if not 0 <= v < self.n:
                    raise IndexError(f"node {v} out of range for n={self.n}")
                dist[v] = 0
                order.append(v)
                frontier.append(v)
        for d in range(radius + 1):
            nxt: List[int] = []
            for v in frontier:
                for u in self.neighbors(v):
                    if u not in dist:
                        dist[u] = d + 1
                        order.append(u)
                        nxt.append(u)
            frontier = nxt
        core = [v for v in order if dist[v] <= radius]
        boundary = [v for v in order if dist[v] == radius + 1]
        return core, boundary

    def strata(self, radius: int) -> List[Tuple[int, int]]:
        """Closed-form strata sound at ``radius``: ``[(rep, count), ...]``.

        A stratum is a set of nodes whose *anonymous* radius-``radius``
        balls are guaranteed byte-identical (each stratum lies inside
        one view-equivalence class; distinct strata may merge).  ``rep``
        is the stratum's minimum member and entries are sorted by
        ``rep``, so that expanding one rep per stratum reproduces the
        exact first-occurrence class order — and representatives — of
        the materialized full scan.  Counts sum to ``n``.

        The base implementation is the always-sound all-singletons
        decomposition, which is O(n) and therefore guarded; symmetric
        families override with O(1)/O(depth) closed forms.
        """
        if radius < 0:
            raise ValueError("radius must be non-negative")
        return self._singleton_strata()

    def _singleton_strata(self) -> List[Tuple[int, int]]:
        """One stratum per node (trivially sound; guarded: O(n))."""
        self._guard("per-node (singleton) strata")
        return [(v, 1) for v in range(self.n)]

    # -- guarded materialization ----------------------------------------
    def csr(self) -> Any:
        """Synthesize (and cache) the full CSR layout — guarded.

        The arrays are byte-identical to ``materialized().csr()``'s
        (proven by the parity suite), so every CSR/kernel consumer works
        on the handle unchanged at overlap n.
        """
        if self._csr is None:
            self._guard("full CSR synthesis")
            from .csr import CSRGraph

            self._csr = CSRGraph.synthesize(self._row, self.n)
        return self._csr

    def materialized(self) -> Any:
        """Build (and cache) the registered generator twin — guarded."""
        if self._materialized is None:
            self._guard("full materialization")
            self._materialized = self._materialize()
        return self._materialized

    # -- pickling / repr -------------------------------------------------
    def __reduce__(self):
        """Pickle as constructor arguments (caches never travel)."""
        return (type(self), self._ctor_args())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        args = ", ".join(repr(a) for a in self._ctor_args())
        return f"{type(self).__name__}({args})"


class ImplicitCycle(ImplicitGraph):
    """The registered ``cycle`` family, symbolically.

    Port rows match :func:`~repro.graphs.generators.cycle` exactly: the
    edge loop inserts ``(i, i+1 mod n)`` in order, so node 0 is the one
    exceptional row ``(1, n-1)`` (its wrap-around edge lands on port 1),
    interior nodes are ``(v-1, v+1)``, and node ``n-1`` is ``(n-2, 0)``.
    """

    family = "cycle"

    def __init__(self, n: int):
        if n < 3:
            raise ValueError("cycle needs at least 3 nodes")
        super().__init__()
        self._n = n

    def _ctor_args(self) -> Tuple[Any, ...]:
        return (self._n,)

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def m(self) -> int:
        """Number of edges (= ``n`` on a cycle)."""
        return self._n

    def max_degree(self) -> int:
        """Always 2."""
        return 2

    def min_degree(self) -> int:
        """Always 2."""
        return 2

    def _row(self, v: int) -> Tuple[int, ...]:
        n = self._n
        if v == 0:
            return (1, n - 1)
        if v == n - 1:
            return (n - 2, 0)
        return (v - 1, v + 1)

    def strata(self, radius: int) -> List[Tuple[int, int]]:
        """O(1) strata: only balls containing node 0's exceptional row
        can differ, so nodes ``radius+1 .. n-radius-1`` share one
        translation-invariant stratum and the ``2*radius + 1`` nodes
        near the seam are singletons."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        n = self._n
        if n < 2 * radius + 3:
            return self._singleton_strata()
        out: List[Tuple[int, int]] = [(v, 1) for v in range(radius + 1)]
        out.append((radius + 1, n - 2 * radius - 1))
        out.extend((v, 1) for v in range(n - radius, n))
        return out

    def _materialize(self) -> Any:
        from .generators import cycle

        return cycle(self._n)


class ImplicitPath(ImplicitGraph):
    """The registered ``path`` family, symbolically.

    Rows match :func:`~repro.graphs.generators.path`: endpoints have one
    neighbor, interior nodes are ``(v-1, v+1)``.
    """

    family = "path"

    def __init__(self, n: int):
        if n < 1:
            raise ValueError("path needs at least 1 node")
        super().__init__()
        self._n = n

    def _ctor_args(self) -> Tuple[Any, ...]:
        return (self._n,)

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def m(self) -> int:
        """Number of edges (= ``n - 1`` on a path)."""
        return self._n - 1

    def max_degree(self) -> int:
        """2 for paths of 3+ nodes, else ``n - 1``."""
        return min(2, self._n - 1)

    def min_degree(self) -> int:
        """1 except for the single-node path."""
        return 0 if self._n == 1 else 1

    def _row(self, v: int) -> Tuple[int, ...]:
        n = self._n
        if n == 1:
            return ()
        if v == 0:
            return (1,)
        if v == n - 1:
            return (n - 2,)
        return (v - 1, v + 1)

    def strata(self, radius: int) -> List[Tuple[int, int]]:
        """O(1) strata: balls not touching either endpoint are
        translation-equivalent; the ``2*(radius+1)`` end-zone nodes are
        singletons."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        n = self._n
        if n < 2 * radius + 4:
            return self._singleton_strata()
        out: List[Tuple[int, int]] = [(v, 1) for v in range(radius + 1)]
        out.append((radius + 1, n - 2 * radius - 2))
        out.extend((v, 1) for v in range(n - radius - 1, n))
        return out

    def _materialize(self) -> Any:
        from .generators import path

        return path(self._n)


class ImplicitTorus(ImplicitGraph):
    """The registered ``torus`` family, symbolically.

    :func:`~repro.graphs.generators.toroidal_grid` visits nodes in
    row-major order, inserting each node's *right* then *down* edge; a
    node's port order is therefore the chronological order of the four
    insertion events that touch it.  For node ``(r, c)`` those events
    are ``up`` (the down-insertion of ``((r-1) mod rows, c)``), ``left``
    (the right-insertion of ``(r, (c-1) mod cols)``), and its own
    ``right`` and ``down`` insertions — interior nodes read
    ``(up, left, right, down)``, while row-0 / column-0 nodes see their
    wrap-around event land late and their port order rotate.  Sorting
    the four event keys reproduces every case exactly.
    """

    family = "torus"

    def __init__(self, rows: int, cols: int):
        if rows < 3 or cols < 3:
            raise ValueError("toroidal grid needs both dimensions >= 3")
        super().__init__()
        self.rows = rows
        self.cols = cols

    def _ctor_args(self) -> Tuple[Any, ...]:
        return (self.rows, self.cols)

    @property
    def n(self) -> int:
        """Number of nodes (``rows * cols``)."""
        return self.rows * self.cols

    @property
    def m(self) -> int:
        """Number of edges (``2 * n``: the torus is 4-regular)."""
        return 2 * self.rows * self.cols

    def max_degree(self) -> int:
        """Always 4."""
        return 4

    def min_degree(self) -> int:
        """Always 4."""
        return 4

    def _row(self, v: int) -> Tuple[int, ...]:
        rows, cols = self.rows, self.cols
        r, c = divmod(v, cols)
        up = ((r - 1) % rows) * cols + c
        down = ((r + 1) % rows) * cols + c
        left = r * cols + (c - 1) % cols
        right = r * cols + (c + 1) % cols
        # Event keys: 2 * (insertion-loop position of the inserting
        # node) + sub-event (0 = its right-edge, 1 = its down-edge).
        events = sorted(
            (
                (2 * up + 1, up),  # down-insertion of the node above
                (2 * left, left),  # right-insertion of the node left
                (2 * v, right),  # own right-insertion
                (2 * v + 1, down),  # own down-insertion
            )
        )
        return tuple(u for _, u in events)

    def _axis_strata(
        self, size: int, radius: int
    ) -> Optional[List[Tuple[int, int]]]:
        """Coordinate classes along one axis, or ``None`` if the axis is
        too short for a generic (translation-invariant) band.

        Only index-0 lines carry rotated port orders, so coordinates
        whose radius-band avoids 0 are translation-equivalent.
        """
        if size < 2 * radius + 3:
            return None
        out: List[Tuple[int, int]] = [(i, 1) for i in range(radius + 1)]
        out.append((radius + 1, size - 2 * radius - 1))
        out.extend((i, 1) for i in range(size - radius, size))
        return out

    def strata(self, radius: int) -> List[Tuple[int, int]]:
        """O(1) strata: the product of the two axis decompositions —
        ``(2*radius + 2)^2`` strata regardless of ``n``."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        rows_s = self._axis_strata(self.rows, radius)
        cols_s = self._axis_strata(self.cols, radius)
        if rows_s is None or cols_s is None:
            return self._singleton_strata()
        out = [
            (r_rep * self.cols + c_rep, r_cnt * c_cnt)
            for r_rep, r_cnt in rows_s
            for c_rep, c_cnt in cols_s
        ]
        out.sort()
        return out

    def _materialize(self) -> Any:
        from .generators import toroidal_grid

        return toroidal_grid(self.rows, self.cols)


class ImplicitTree(ImplicitGraph):
    """The registered ``tree`` family (balanced Delta-regular tree),
    symbolically.

    :func:`~repro.graphs.generators.balanced_regular_tree` numbers nodes
    in BFS order with contiguous layers, and a node's parent edge is
    inserted (by the parent) before its own child edges — so rows are
    pure layer arithmetic: the root reads ``(1, .., delta)``, an
    internal node at layer ``l`` with within-layer index ``j`` reads
    ``(parent, first_child, .., first_child + delta - 2)``, and leaves
    read ``(parent,)``.
    """

    family = "tree"

    def __init__(self, delta: int, depth: int):
        if delta < 2:
            raise ValueError("delta must be at least 2")
        if depth < 0:
            raise ValueError("depth must be non-negative")
        super().__init__()
        self.delta = delta
        self.depth = depth
        # layer_start[l] = first node id of layer l; one extra entry so
        # layer_start[depth + 1] == n.
        starts = [0, 1]
        size = 1 if depth >= 1 else 0
        layer = delta
        for _ in range(depth):
            size += layer
            starts.append(starts[-1] + layer)
            layer *= delta - 1
        self._layer_start = starts[: depth + 2]
        self._n = self._layer_start[depth + 1] if depth >= 1 else 1

    def _ctor_args(self) -> Tuple[Any, ...]:
        return (self.delta, self.depth)

    @property
    def n(self) -> int:
        """Number of nodes (``balanced_regular_tree_size(delta, depth)``)."""
        return self._n

    @property
    def m(self) -> int:
        """Number of edges (``n - 1``: it is a tree)."""
        return self._n - 1

    def max_degree(self) -> int:
        """``delta`` for depth >= 1; 0 for the single-node tree."""
        return 0 if self.depth == 0 else self.delta

    def min_degree(self) -> int:
        """1 (the leaves) for depth >= 1; 0 for the single-node tree."""
        return 0 if self.depth == 0 else 1

    def layer_of(self, v: int) -> int:
        """The BFS layer (= distance from the root) of node ``v``."""
        return bisect_right(self._layer_start, v) - 1

    def layer_bounds(self, layer: int) -> Tuple[int, int]:
        """Half-open node-id range ``[start, end)`` of ``layer``."""
        return self._layer_start[layer], self._layer_start[layer + 1]

    def _row(self, v: int) -> Tuple[int, ...]:
        delta, depth = self.delta, self.depth
        if depth == 0:
            return ()
        if v == 0:
            return tuple(range(1, delta + 1))
        layer = self.layer_of(v)
        j = v - self._layer_start[layer]
        parent = (
            0 if layer == 1
            else self._layer_start[layer - 1] + j // (delta - 1)
        )
        if layer == depth:
            return (parent,)
        first_child = self._layer_start[layer + 1] + j * (delta - 1)
        return (parent,) + tuple(range(first_child, first_child + delta - 1))

    def _descend(self, v: int, layer: int, positions: Sequence[int]) -> int:
        """Follow child positions downward from node ``v`` at ``layer``."""
        delta = self.delta
        for p in positions:
            j = v - self._layer_start[layer]
            v = self._layer_start[layer + 1] + j * (delta - 1) + p
            layer += 1
        return v

    def strata(self, radius: int) -> List[Tuple[int, int]]:
        """O(depth * (delta-1)^radius) strata, independent of ``n``.

        A node's anonymous ball shows, for every ancestor within
        distance ``radius``, *which child port* points back down toward
        the center — so layer alone is not sound.  What is sound:

        * nodes in layers ``0 .. radius`` see the root, and their full
          root path is visible, so each is its own stratum (there are
          only O(delta^radius) such nodes, regardless of ``n``);
        * a deeper node at layer ``l > radius`` is classified by its
          ancestor *position path* — the ``radius``-tuple of child
          positions leading down from its height-``radius`` ancestor.
          Its ball lies inside that ancestor's subtree, and any two
          anchors at the same layer have order-isomorphic subtrees, so
          equal position paths imply byte-identical balls.  Each such
          stratum has one member per anchor, i.e.
          ``layer_size(l - radius)`` members.

        Representatives are the minimum members (descend from the first
        node of the anchor layer); the list is sorted by rep.
        """
        if radius < 0:
            raise ValueError("radius must be non-negative")
        delta, depth = self.delta, self.depth
        out: List[Tuple[int, int]] = []
        top = min(radius, depth)
        out.extend((v, 1) for v in range(self._layer_start[top + 1]))
        for layer in range(radius + 1, depth + 1):
            anchor = layer - radius
            anchor_size = (
                self._layer_start[anchor + 1] - self._layer_start[anchor]
            )
            first_anchor = self._layer_start[anchor]
            positions = [()]
            for _ in range(radius):
                positions = [
                    path + (p,) for path in positions
                    for p in range(delta - 1)
                ]
            for path in positions:
                rep = self._descend(first_anchor, anchor, path)
                out.append((rep, anchor_size))
        out.sort()
        return out

    def _materialize(self) -> Any:
        from .generators import balanced_regular_tree

        return balanced_regular_tree(self.delta, self.depth)


def implicit_tree_of_size_at_least(
    delta: int, min_nodes: int
) -> Tuple[ImplicitTree, int]:
    """Smallest implicit balanced Delta-regular tree with >= ``min_nodes``
    nodes; returns ``(tree, depth)`` (the symbolic twin of
    :func:`~repro.graphs.generators.regular_tree_of_depth_at_least`)."""
    depth = 0
    while True:
        tree = ImplicitTree(delta, depth)
        if tree.n >= min_nodes:
            return tree, depth
        depth += 1
