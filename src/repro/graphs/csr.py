"""Compiled CSR layout for frozen port-numbered graphs.

:class:`CSRGraph` is the flat-array mirror of :class:`~repro.graphs.
graph.Graph`: one ``indptr`` offsets array and one ``indices`` neighbor
array (both built exactly once), plus a precomputed *reverse-port*
table making the two port queries that dominate view gathering O(1):

``endpoint(v, port)``
    ``indices[indptr[v] + port]`` — one load instead of a list index.
``port_to(v, u)``
    A precomputed arc-level lookup instead of ``list.index`` (which is
    O(deg) per call and the inner loop of ``gather_view``).

The layout is derived data, never authoritative: it can only be built
from a *frozen* graph (or an explicit adjacency, which is frozen by
construction), so it cannot go stale — the mutability fix in
:meth:`Graph.add_edge <repro.graphs.graph.Graph.add_edge>` plus the
frozen-only constructor are what make caching it on the graph sound.
``repro.local_model.batch_views`` builds its batched ball expander on
top of these arrays; the engines reach both through
:meth:`Graph.csr() <repro.graphs.graph.Graph.csr>`.

Arrays are row-major in *port order*: the arcs of node ``v`` occupy
``indptr[v] .. indptr[v+1]`` and arc ``indptr[v] + p`` is ``v``'s port
``p``.  For that arc, ``rev_ports`` holds the port of the *other*
endpoint leading back to ``v`` — the value ``_collect`` needs for every
induced edge of every view.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["CSRGraph"]


class CSRGraph:
    """Flat-array (CSR) view of a frozen port-numbered graph.

    Attributes
    ----------
    n, m:
        Node and (undirected) edge counts.
    indptr:
        ``int64[n + 1]`` arc offsets; node ``v``'s arcs are
        ``indptr[v] .. indptr[v + 1]``.
    indices:
        ``int64[2m]`` arc targets in port order.
    rev_ports:
        ``int64[2m]``; for the arc ``(v, port p) -> u`` this is the
        port of ``u`` whose edge leads back to ``v``.
    degrees:
        ``int64[n]`` node degrees (``indptr`` differences).
    """

    __slots__ = (
        "n",
        "m",
        "indptr",
        "indices",
        "rev_ports",
        "degrees",
        "_arc_of",
        "_expander",
    )

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        rev_ports: np.ndarray,
    ):
        self.n = int(len(indptr)) - 1
        self.m = int(len(indices)) // 2
        self.indptr = indptr
        self.indices = indices
        self.rev_ports = rev_ports
        self.degrees = np.diff(indptr)
        self._arc_of: Optional[Dict[Tuple[int, int], int]] = None
        self._expander = None  # cached BatchBallExpander (never pickled)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph) -> "CSRGraph":
        """Compile a *frozen* :class:`~repro.graphs.graph.Graph`.

        Raises
        ------
        ValueError
            If the graph is not frozen.  The CSR arrays are built once
            and cached; compiling a mutable graph would let them go
            stale silently.
        """
        if not getattr(graph, "is_frozen", False):
            raise ValueError(
                "CSRGraph.from_graph requires a frozen graph; call "
                "Graph.freeze() first (the layout is built once and must "
                "not go stale)"
            )
        return cls._from_rows(graph.adjacency_rows())

    @classmethod
    def from_adjacency(cls, adjacency: Sequence[Sequence[int]]) -> "CSRGraph":
        """Compile explicit port-ordered adjacency rows.

        Validates through :meth:`Graph.from_adjacency
        <repro.graphs.graph.Graph.from_adjacency>` (same error behavior)
        and compiles the frozen result.
        """
        from .graph import Graph

        return cls.from_graph(Graph.from_adjacency(adjacency).freeze())

    @classmethod
    def synthesize(cls, row_of, n: int) -> "CSRGraph":
        """Build the full layout from a closed-form row function.

        ``row_of(v)`` must return node ``v``'s port-ordered neighbor
        tuple; the resulting arrays are byte-identical to compiling the
        materialized graph (:class:`~repro.graphs.implicit.ImplicitGraph`
        handles call this, guarded, for the small-n parity overlap).
        """
        return cls._from_rows([row_of(v) for v in range(n)])

    @classmethod
    def synthesize_window(
        cls,
        row_of,
        core: Sequence[int],
        boundary: Sequence[int] = (),
    ) -> Tuple["CSRGraph", Dict[int, int]]:
        """Synthesize a self-contained sub-CSR over a ball window.

        ``core`` nodes get their exact closed-form rows with neighbors
        remapped to window-local ids; ``boundary`` nodes (the ring just
        outside the deepest ball) are present only as targets — their
        rows are left empty.  Every neighbor of a core node must lie in
        ``core + boundary`` (the invariant :meth:`ImplicitGraph.window
        <repro.graphs.implicit.ImplicitGraph.window>` provides).

        Returns ``(layout, local_of)`` where ``local_of`` maps original
        node ids to window-local ids (core first, in given order).

        The window layout is for the batched ball expander only: it
        reads ``indptr`` / ``indices`` / ``degrees`` of ball (core)
        nodes exclusively.  Boundary rows being empty means their
        ``degrees`` entries and the ``rev_ports`` table are *not*
        meaningful — the expander never reads either for ball nodes'
        streams, and no other consumer sees a window layout.
        """
        local: Dict[int, int] = {}
        for v in core:
            if v in local:
                raise ValueError(f"duplicate window node {v}")
            local[v] = len(local)
        for v in boundary:
            if v in local:
                raise ValueError(f"duplicate window node {v}")
            local[v] = len(local)
        rows: List[List[int]] = []
        for v in core:
            try:
                rows.append([local[u] for u in row_of(v)])
            except KeyError as exc:
                raise ValueError(
                    f"window is not self-contained: neighbor {exc.args[0]} "
                    f"of core node {v} is outside the window"
                ) from None
        rows.extend([] for _ in boundary)
        n = len(rows)
        degrees = np.fromiter((len(r) for r in rows), dtype=np.int64, count=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        indices = np.empty(int(indptr[-1]), dtype=np.int64)
        pos = 0
        for r in rows:
            indices[pos : pos + len(r)] = r
            pos += len(r)
        rev = np.full(len(indices), -1, dtype=np.int64)
        return cls(indptr, indices, rev), local

    @classmethod
    def _from_rows(cls, rows: Sequence[Sequence[int]]) -> "CSRGraph":
        n = len(rows)
        degrees = np.fromiter((len(r) for r in rows), dtype=np.int64, count=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        arcs = int(indptr[-1])
        indices = np.empty(arcs, dtype=np.int64)
        pos = 0
        for r in rows:
            indices[pos : pos + len(r)] = r
            pos += len(r)
        return cls(indptr, indices, cls._reverse_ports(n, indptr, indices))

    def patched(
        self, rows: Sequence[Sequence[int]], touched: Sequence[int]
    ) -> Tuple["CSRGraph", str]:
        """Splice updated adjacency rows into a *new* layout.

        ``rows`` are the post-mutation port-ordered adjacency rows
        (same node count) and ``touched`` the nodes whose rows differ
        from this layout's.  Untouched rows are copied arc-block-wise
        with vectorized gathers; only the touched rows pass through
        Python.  The reverse-port table is rebuilt in full — it is one
        vectorized argsort pass and depends on global arc ranks, so
        patching it piecemeal would cost more than recomputing it.

        Returns ``(layout, mode)`` where ``mode`` is ``"patch"`` for
        the splice path or ``"recompile"`` when the delta is too large
        for patching to win (more than ``n / 4`` touched rows) and the
        layout is rebuilt from scratch instead.  ``self`` is never
        mutated; with no touched rows it is returned as-is (the arrays
        are immutable by contract, so sharing them is sound).
        """
        n = self.n
        if len(rows) != n:
            raise ValueError(
                f"patched() keeps the node set fixed: expected {n} rows, got {len(rows)}"
            )
        touched = sorted(set(touched))
        if not touched:
            return self, "patch"
        if len(touched) * 4 > n:
            return self._from_rows(rows), "recompile"
        degrees = self.degrees.copy()
        for v in touched:
            degrees[v] = len(rows[v])
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        indices = np.empty(int(indptr[-1]), dtype=np.int64)
        mask = np.ones(n, dtype=bool)
        mask[touched] = False
        keep_lens = self.degrees[mask]
        total = int(keep_lens.sum())
        if total:
            within = np.arange(total, dtype=np.int64) - np.repeat(
                np.cumsum(keep_lens) - keep_lens, keep_lens
            )
            indices[np.repeat(indptr[:-1][mask], keep_lens) + within] = self.indices[
                np.repeat(self.indptr[:-1][mask], keep_lens) + within
            ]
        for v in touched:
            row = rows[v]
            indices[indptr[v] : indptr[v] + len(row)] = row
        return (
            CSRGraph(indptr, indices, self._reverse_ports(n, indptr, indices)),
            "patch",
        )

    @staticmethod
    def _reverse_ports(
        n: int, indptr: np.ndarray, indices: np.ndarray
    ) -> np.ndarray:
        """For every arc ``(v -> u)``, the port of ``u`` back to ``v``.

        Simple graphs make arc keys ``src * n + dst`` unique, so sorting
        the arcs by ``(src, dst)`` and by ``(dst, src)`` aligns each arc
        with its reverse arc at the same sorted rank.
        """
        arcs = len(indices)
        rev = np.empty(arcs, dtype=np.int64)
        if arcs == 0:
            return rev
        src = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
        ports = np.arange(arcs, dtype=np.int64) - np.repeat(
            indptr[:-1], np.diff(indptr)
        )
        forward = np.argsort(src * n + indices)
        backward = np.argsort(indices * n + src)
        rev[forward] = ports[backward]
        return rev

    # ------------------------------------------------------------------
    # Queries (Graph-compatible where it matters)
    # ------------------------------------------------------------------
    def degree(self, v: int) -> int:
        """Degree of node ``v``."""
        return int(self.degrees[v])

    def neighbors(self, v: int) -> Tuple[int, ...]:
        """Neighbors of ``v`` in port order."""
        return tuple(
            int(u) for u in self.indices[self.indptr[v] : self.indptr[v + 1]]
        )

    def endpoint(self, v: int, port: int) -> int:
        """The node at the other end of port ``port`` of ``v`` — O(1)."""
        if not 0 <= port < self.degrees[v]:
            raise ValueError(f"node {v} has no port {port}")
        return int(self.indices[self.indptr[v] + port])

    def _arc_table(self) -> Dict[Tuple[int, int], int]:
        if self._arc_of is None:
            src = np.repeat(
                np.arange(self.n, dtype=np.int64), np.diff(self.indptr)
            )
            self._arc_of = {
                (int(v), int(u)): a
                for a, (v, u) in enumerate(zip(src, self.indices))
            }
        return self._arc_of

    def port_to(self, v: int, u: int) -> int:
        """The port of ``v`` whose edge leads to ``u`` — O(1) via the
        precomputed arc table (built lazily, once).

        Raises
        ------
        ValueError
            If ``u`` is not a neighbor of ``v`` (same contract as
            :meth:`Graph.port_to <repro.graphs.graph.Graph.port_to>`).
        """
        arc = self._arc_table().get((v, u))
        if arc is None:
            raise ValueError(f"{u} is not a neighbor of {v}")
        return int(arc - self.indptr[v])

    def rev_port(self, v: int, port: int) -> int:
        """The receiving port at the other end of ``(v, port)`` — O(1)."""
        if not 0 <= port < self.degrees[v]:
            raise ValueError(f"node {v} has no port {port}")
        return int(self.rev_ports[self.indptr[v] + port])

    # ------------------------------------------------------------------
    # Pickling: ship only the arrays.  The arc table and the batched
    # expander (with its reusable block buffers) rebuild lazily on the
    # other side — shipping them would bloat every sharded-engine
    # payload for data the workers may never touch.
    # ------------------------------------------------------------------
    def __getstate__(self):
        return (self.indptr, self.indices, self.rev_ports)

    def __setstate__(self, state):
        indptr, indices, rev_ports = state
        self.__init__(indptr, indices, rev_ports)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CSRGraph(n={self.n}, m={self.m})"
