"""Graph transforms: line graphs and powers.

* :func:`line_graph` — nodes are the edges of G, adjacent iff they
  share an endpoint.  Edge-labeled LCLs on G become node-labeled LCLs
  on L(G): the bridge the paper's edge-based model (Section 5) walks
  across, and the standard route to edge colorings.
* :func:`graph_power` — ``G^k``: same nodes, edges between all pairs at
  distance at most k.  Distance-k constraints on G become radius-1
  constraints on ``G^k`` (how distance-k weak colorings relate to plain
  ones).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .graph import Edge, Graph, edge_key

__all__ = ["line_graph", "graph_power"]


def line_graph(graph: Graph) -> Tuple[Graph, List[Edge]]:
    """The line graph L(G) plus the index -> original-edge mapping.

    L-node ``i`` corresponds to ``edges[i]`` (canonical keys in sorted
    order); two L-nodes are adjacent iff their edges share an endpoint.
    The maximum degree of L(G) is at most ``2 * (Delta - 1)``.
    """
    edges = list(graph.edges())
    index: Dict[Edge, int] = {e: i for i, e in enumerate(edges)}
    lg = Graph(len(edges))
    for v in graph.nodes():
        incident = [index[edge_key(v, u)] for u in graph.neighbors(v)]
        for a in range(len(incident)):
            for b in range(a + 1, len(incident)):
                if not lg.has_edge(incident[a], incident[b]):
                    lg.add_edge(incident[a], incident[b])
    return lg.freeze(), edges


def graph_power(graph: Graph, k: int) -> Graph:
    """``G^k``: edges between every pair at hop distance in ``1..k``."""
    if k < 1:
        raise ValueError("power must be at least 1")
    out = Graph(graph.n)
    for v in graph.nodes():
        for u in graph.bfs_distances(v, cutoff=k):
            if u > v:
                out.add_edge(v, u)
    return out.freeze()
