#!/usr/bin/env python
"""Execute the fenced ``python`` examples in the documentation.

Usage::

    PYTHONPATH=src python tools/run_doc_examples.py [FILE ...]

With no arguments, runs ``README.md`` and ``docs/KERNELS.md`` — the
two pages whose examples the docs CI job promises are executable.
Each file's ```` ```python ```` blocks run top to bottom in one shared
namespace (later blocks may use names bound by earlier ones, exactly
as a reader following along would), so an example that drifts from the
API fails CI instead of rotting.  Other fence languages (``bash``,
``text``, output-only fences) are skipped.  Exit code 0 when every
block runs, 1 otherwise, naming the file and line of the first failing
statement.
"""

from __future__ import annotations

import os
import re
import sys
import traceback
from typing import List, Tuple

_DEFAULT_FILES = (
    "README.md",
    os.path.join("docs", "KERNELS.md"),
    os.path.join("docs", "SERVICE.md"),
)

_OPEN_FENCE = re.compile(r"^(```|~~~)\s*python\s*$")
_ANY_FENCE = re.compile(r"^(```|~~~)")


def extract_blocks(path: str) -> List[Tuple[int, str]]:
    """All ``python`` fences in ``path`` as (starting line, source)."""
    blocks = []
    lines_buffer: List[str] = []
    start = None
    in_python = in_other = False
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            stripped = line.strip()
            if in_python:
                if _ANY_FENCE.match(stripped):
                    blocks.append((start, "".join(lines_buffer)))
                    in_python, lines_buffer, start = False, [], None
                else:
                    lines_buffer.append(line)
            elif in_other:
                if _ANY_FENCE.match(stripped):
                    in_other = False
            elif _OPEN_FENCE.match(stripped):
                in_python, start = True, lineno + 1
            elif _ANY_FENCE.match(stripped):
                in_other = True
    return blocks


def run_file(path: str) -> int:
    """Execute one file's blocks in a shared namespace; 0 on success."""
    blocks = extract_blocks(path)
    if not blocks:
        print(f"{path}: no python examples")
        return 0
    namespace: dict = {"__name__": f"doc_example:{path}"}
    for start, source in blocks:
        code = compile(source, f"{path}:{start}", "exec")
        try:
            exec(code, namespace)  # noqa: S102 - executing our own docs
        except Exception:
            print(f"{path}:{start}: example failed")
            traceback.print_exc()
            return 1
    print(f"{path}: {len(blocks)} example block(s) ok")
    return 0


def main(argv: List[str]) -> int:
    files = argv or [f for f in _DEFAULT_FILES if os.path.exists(f)]
    return max((run_file(path) for path in files), default=0)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
