#!/usr/bin/env python
"""Check that relative markdown links in the docs resolve to real files.

Usage::

    python tools/check_doc_links.py [FILE_OR_DIR ...]

With no arguments, checks ``README.md``, ``docs/``, and the top-level
``*.md`` files.  External links (``http(s)://``, ``mailto:``) and pure
in-page anchors (``#...``) are skipped; relative links are resolved
against the containing file's directory and must point at an existing
file or directory.  Exit code 0 when every link resolves, 1 otherwise —
CI's docs step runs exactly this.
"""

from __future__ import annotations

import os
import re
import sys
from typing import Iterable, List, Tuple

# [text](target) — excluding images' leading "!" is unnecessary: image
# targets must exist too.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_CODE_FENCE = re.compile(r"^(```|~~~)")


def iter_markdown_files(arguments: List[str]) -> Iterable[str]:
    if not arguments:
        arguments = ["README.md", "docs"] + sorted(
            f for f in os.listdir(".") if f.endswith(".md") and f != "README.md"
        )
    for arg in arguments:
        if os.path.isdir(arg):
            for root, _dirs, files in os.walk(arg):
                for name in sorted(files):
                    if name.endswith(".md"):
                        yield os.path.join(root, name)
        elif arg.endswith(".md") and os.path.exists(arg):
            yield arg


def check_file(path: str) -> List[Tuple[int, str, str]]:
    """All broken links in one file as (line, target, reason)."""
    broken = []
    in_fence = False
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            if _CODE_FENCE.match(line.strip()):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for match in _LINK.finditer(line):
                target = match.group(1)
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                if target.startswith("#"):
                    continue
                relative = target.split("#", 1)[0]
                if not relative:
                    continue
                resolved = os.path.normpath(
                    os.path.join(os.path.dirname(path), relative)
                )
                if not os.path.exists(resolved):
                    broken.append((lineno, target, f"missing: {resolved}"))
    return broken


def main(argv: List[str]) -> int:
    seen = set()
    failures = 0
    checked = 0
    for path in iter_markdown_files(argv):
        normalized = os.path.normpath(path)
        if normalized in seen:
            continue
        seen.add(normalized)
        checked += 1
        for lineno, target, reason in check_file(normalized):
            print(f"{normalized}:{lineno}: broken link ({target}) — {reason}")
            failures += 1
    print(f"checked {checked} markdown file(s): "
          f"{'all links ok' if not failures else f'{failures} broken link(s)'}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
