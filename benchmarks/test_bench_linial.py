"""Benchmark: Linial's neighborhood-graph lower bound, exact.

The introduction's "first flavor" of speedup argument, executed:
chi(N_0(m)) = m exactly; one round collapses the palette to 3 up to
m = 6; and — the headline — ``N_1(7)`` admits **no** proper 3-coloring,
a machine-checked proof that one round cannot 3-color directed cycles
with identifier space 7.
"""

import pytest

from repro.lowerbounds import (
    chromatic_number,
    is_c_colorable,
    neighborhood_graph,
)


def test_bench_linial_threshold(benchmark):
    """The exact UNSAT proof: N_1(7) is not 3-colorable."""
    graph, _ = neighborhood_graph(7, 1)

    result = benchmark.pedantic(is_c_colorable, args=(graph, 3), rounds=1, iterations=1)
    assert result is None  # impossibility, proved by exhaustion


def test_bench_chi_n1_6(benchmark):
    graph, _ = neighborhood_graph(6, 1)
    chi = benchmark.pedantic(chromatic_number, args=(graph,), rounds=1, iterations=1)
    assert chi == 3


def test_zero_round_needs_whole_space():
    for m in (3, 4, 5, 6, 7):
        graph, _ = neighborhood_graph(m, 0)
        assert chromatic_number(graph) == m


def test_one_round_collapse_then_threshold():
    # m = 6: one round suffices for 3 colors (the m = 7 impossibility is
    # the benchmark above) — and 4 colors remain feasible at m = 7: the
    # threshold is about the palette, not about coloring at all.
    g6, _ = neighborhood_graph(6, 1)
    assert is_c_colorable(g6, 3) is not None
    g7, _ = neighborhood_graph(7, 1)
    assert is_c_colorable(g7, 4) is not None
