"""Benchmark: local -> global failure amplification (Claim 10 / Lemma 9).

Fixed 1-round anonymous algorithms on growing tori: the measured global
success collapses with n while staying under the analytic independent-
execution ceiling — the mechanism behind "success probability strictly
less than 1/2" in Theorem 6.
"""

import pytest

from repro.experiments import run_global_failure
from repro.speedup import smaller_count_coloring


@pytest.fixture(scope="module")
def amplification():
    return run_global_failure(sizes=(3, 6, 9, 12), trials=200)


def test_bench_global_failure(benchmark):
    result = benchmark.pedantic(
        run_global_failure,
        kwargs={"sizes": (3, 6, 9), "trials": 120},
        rounds=1,
        iterations=1,
    )
    assert result.success_decays()


def test_success_collapses_with_n(amplification):
    first = amplification.points[0].measured_success
    last = amplification.points[-1].measured_success
    assert last <= first
    assert last <= 0.05  # essentially dead at 12 x 12 for this seed


def test_ceiling_respected(amplification):
    for point in amplification.points:
        sigma = (
            max(point.analytic_ceiling * (1 - point.analytic_ceiling), 0.0025) / 200
        ) ** 0.5
        assert point.measured_success <= point.analytic_ceiling + 3 * sigma + 0.05


def test_better_seed_survives_longer():
    strong = run_global_failure(
        algorithm=smaller_count_coloring(2, bits=2), sizes=(3, 6, 9), trials=150
    )
    weak = run_global_failure(sizes=(3, 6, 9), trials=150)
    assert strong.local_failure < weak.local_failure
    assert (
        strong.points[-1].measured_success >= weak.points[-1].measured_success
    )
