"""Benchmark regression guard for the incremental engine.

Measures what :class:`~repro.core.IncrementalEngine` actually replaces:
the *from-scratch recompute* a mutation forces on every other backend.
On the same Δ ∈ {4, 6} balanced regular trees the CSR benchmark pins
(n=4373 and n=4687, ball-signature radius 2), each repeat applies a
delta through the primed incremental engine (timed), runs a fresh
cached/CSR engine on the mutated graph (timed), asserts **bit-identity
between the two reports inside the timed loop**, and then reverts the
delta untimed so every repeat does identical work.  Asserts

* the headline claim: **>= 5x speedup** for a single-edge delta on
  both tree sizes — the number ``docs/INCREMENTAL.md`` quotes (the
  footprint is a few dozen nodes out of ~4400, so the real ratio is
  far higher; 5 is the regression floor);
* no regression: each cell's speedup stays within **2x** of the
  committed baseline (the last entry of
  ``benchmarks/BENCH_incremental.json``) — a ratio of two timings on
  the same machine, so machine-independent;
* determinism: footprint sizes and changed-node counts match the
  baseline exactly — they depend only on the graph and the delta,
  never on the machine.

The ``*-batch1pct-*`` cell mutates ~1% of the nodes in one batch
(trajectory-guarded only: a hundred touched rows drag in a footprint
of thousands on a shallow tree, so its ratio is structurally smaller
than the single-edge cells').

Run with ``BENCH_UPDATE=1`` to append the current measurements as a new
trajectory entry (and commit the json); plain runs never write.
"""

from __future__ import annotations

import json
import os
import random
import time
from typing import Any, Dict, List, Tuple

import pytest

from repro.algorithms.view_rules import make_view_rule
from repro.core import IncrementalEngine, SimRequest, derive_seed
from repro.core.cached import CachedEngine
from repro.graphs import GraphDelta, balanced_regular_tree

BENCH_PATH = os.path.join(os.path.dirname(__file__), "BENCH_incremental.json")

#: The measured grid.  Keep keys stable: they index the json trajectory.
CONFIGS = {
    "tree-d4-single-edge-r2": {"delta": 4, "depth": 7, "radius": 2,
                               "batch": 1},
    "tree-d6-single-edge-r2": {"delta": 6, "depth": 5, "radius": 2,
                               "batch": 1},
    "tree-d4-batch1pct-r2": {"delta": 4, "depth": 7, "radius": 2,
                             "batch": 43},  # ~1% of n=4373
}

#: Cells that must meet the headline >= 5x bar (single-edge deltas on
#: both regular-tree sizes — the tentpole's acceptance criterion).
HEADLINE_MIN_SPEEDUP = 5.0
HEADLINE_CONFIGS = ("tree-d4-single-edge-r2", "tree-d6-single-edge-r2")

#: Regression tolerance against the committed baseline speedup.
BASELINE_TOLERANCE = 2.0

_REPEATS = 5


def _delta_edges(graph, batch: int) -> List[Tuple[int, int]]:
    """``batch`` deterministic non-tree leaf-to-leaf chords."""
    rng = random.Random(derive_seed(0, f"bench-incremental-{batch}"))
    edges: List[Tuple[int, int]] = []
    chosen = set()
    n = graph.n
    while len(edges) < batch:
        u, v = rng.randrange(n // 2, n), rng.randrange(n // 2, n)
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key in chosen or graph.has_edge(*key):
            continue
        chosen.add(key)
        edges.append(key)
    return edges


def _measure(config: Dict[str, Any]) -> Dict[str, Any]:
    graph = balanced_regular_tree(config["delta"], config["depth"])
    radius = config["radius"]
    rule = make_view_rule("ball-signature", radius=radius)
    engine = IncrementalEngine()
    engine.run(
        SimRequest(kind="view", graph=graph, algorithm=rule,
                   label="bench-incremental")
    )
    edges = _delta_edges(graph, config["batch"])

    def forward() -> GraphDelta:
        return GraphDelta(
            engine.current_graph, [("add", u, v) for u, v in edges]
        )

    def revert() -> None:
        engine.apply(
            GraphDelta(
                engine.current_graph,
                [("remove", u, v) for u, v in reversed(edges)],
            )
        )

    # Untimed warmup: one full apply/recompute/revert cycle compiles the
    # mutated CSR patch path and the fresh engine's expander buffers.
    warm = forward()
    engine.apply(warm)
    CachedEngine().run(
        SimRequest(kind="view", graph=warm.apply(), algorithm=rule,
                   layout="csr", label="bench-incremental")
    )
    revert()

    inc_times, ref_times = [], []
    footprint = changed = 0
    for _ in range(_REPEATS):
        delta = forward()
        start = time.perf_counter()
        inc_report = engine.apply(delta)
        inc_times.append(time.perf_counter() - start)
        request = SimRequest(
            kind="view", graph=delta.apply(), algorithm=rule,
            layout="csr", label="bench-incremental",
        )
        fresh_engine = CachedEngine()  # fresh memo table per timing
        start = time.perf_counter()
        fresh = fresh_engine.run(request)
        ref_times.append(time.perf_counter() - start)
        # Exactness, inside the timed loop, every repeat: the speedup
        # only counts because the answers are bit-identical.
        assert inc_report.identity() == fresh.identity()
        footprint = inc_report.info["footprint"]
        changed = len(inc_report.changed_nodes)
        revert()
    ref_s, inc_s = min(ref_times), min(inc_times)
    return {
        "n": graph.n,
        "reference_seconds": round(ref_s, 6),
        "incremental_seconds": round(inc_s, 6),
        "speedup": round(ref_s / inc_s, 3),
        "footprint": footprint,
        "changed_nodes": changed,
    }


def _load_bench() -> Dict[str, Any]:
    with open(BENCH_PATH, encoding="utf-8") as fh:
        return json.load(fh)


def _baseline() -> Dict[str, Any]:
    """The most recent committed trajectory entry."""
    return _load_bench()["trajectory"][-1]["results"]


@pytest.fixture(scope="module")
def measurements() -> Dict[str, Dict[str, Any]]:
    results = {name: _measure(config) for name, config in CONFIGS.items()}
    if os.environ.get("BENCH_UPDATE") == "1":
        data = _load_bench()
        data["trajectory"].append(
            {"entry": len(data["trajectory"]) + 1, "results": results}
        )
        with open(BENCH_PATH, "w", encoding="utf-8") as fh:
            json.dump(data, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return results


def test_baseline_file_is_committed():
    data = _load_bench()
    assert data["schema"] == "repro.bench-incremental/1"
    assert data["trajectory"], "baseline trajectory must not be empty"
    assert set(_baseline()) == set(CONFIGS)


@pytest.mark.parametrize("name", sorted(HEADLINE_CONFIGS))
def test_headline_speedup_on_single_edge_deltas(measurements, name):
    result = measurements[name]
    assert result["n"] >= 4373
    assert result["speedup"] >= HEADLINE_MIN_SPEEDUP, (
        f"{name}: incremental apply is only {result['speedup']}x faster "
        f"than a from-scratch recompute (need >= {HEADLINE_MIN_SPEEDUP}x)"
    )


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_speedup_within_tolerance_of_baseline(measurements, name):
    baseline = _baseline()[name]
    current = measurements[name]
    floor = baseline["speedup"] / BASELINE_TOLERANCE
    assert current["speedup"] >= floor, (
        f"{name}: speedup regressed to {current['speedup']}x, more than "
        f"{BASELINE_TOLERANCE}x below the committed {baseline['speedup']}x"
    )


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_footprints_are_deterministic(measurements, name):
    # Footprints and changed-node counts are functions of the graph and
    # the (seed-derived) delta alone.
    baseline = _baseline()[name]
    current = measurements[name]
    assert current["n"] == baseline["n"]
    assert current["footprint"] == baseline["footprint"]
    assert current["changed_nodes"] == baseline["changed_nodes"]
