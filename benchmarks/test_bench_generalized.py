"""Benchmark: Section 7 — the lower bound beyond 4-regular trees.

Runs the speedup engine at Delta = 6 (k = 3 dimensions) and checks the
generalized lemma bounds (Lemmas 14/15), then sweeps the generalized
recurrence constants across Delta in {4, 6, 8, 10}.
"""

import pytest

from repro.analysis import claim11_failure_floor_log2, palette_trajectory
from repro.speedup import (
    edge_local_failure,
    first_lemma_bound,
    first_speedup,
    local_maximum_coloring,
    node_local_failure,
    paper_threshold_first,
    paper_threshold_second,
    run_speedup_pipeline,
    second_lemma_bound,
    second_speedup,
)


def test_bench_delta6_pipeline(benchmark):
    seed = local_maximum_coloring(3, bits=1)
    result = benchmark.pedantic(
        run_speedup_pipeline, args=(seed,), kwargs={"method": "exact"}, rounds=1,
        iterations=1,
    )
    assert result.all_bounds_hold()
    assert result.stages[-1].radius == 0


def test_delta6_lemma14_bound():
    seed = local_maximum_coloring(3, bits=1)
    p = node_local_failure(seed, method="exact").as_float()
    f = paper_threshold_first(p, seed.palette, seed.delta)
    edge = first_speedup(seed, f)
    p_edge = edge_local_failure(edge, method="exact")
    assert p_edge.exact
    assert p_edge.as_float() <= first_lemma_bound(p, seed.palette, 6) + 1e-12
    assert edge.palette.to_float() == 2.0 ** (2 * seed.palette.to_float())


def test_delta6_lemma15_bound():
    seed = local_maximum_coloring(3, bits=1)
    p = node_local_failure(seed, method="exact").as_float()
    edge = first_speedup(seed, paper_threshold_first(p, seed.palette, 6))
    p_edge = edge_local_failure(edge, method="exact").as_float()
    node = second_speedup(edge, paper_threshold_second(p_edge, edge.palette, 6))
    p_node = node_local_failure(node, method="exact")
    assert p_node.as_float() <= second_lemma_bound(p_edge, edge.palette, 6) + 1e-12
    assert node.palette.log2().to_float() == 6 * edge.palette.to_float()  # 2k edges


@pytest.mark.parametrize("delta", [4, 6, 8, 10])
def test_generalized_palette_towers(delta):
    traj = palette_trajectory(2, delta)
    # First step: 2^(delta * 2^(2*2)) = 2^(16 delta).
    assert traj[1].log2().to_float() == pytest.approx(16 * delta)
    assert traj[2].log_star() == traj[1].log_star() + 2


@pytest.mark.parametrize("delta", [4, 6, 8, 10])
def test_generalized_claim16_floor(delta):
    # The exponent base (Delta+1) steepens the floor with Delta.
    floor = claim11_failure_floor_log2(-10, 5, 2, delta)
    assert floor < 0
    steeper = claim11_failure_floor_log2(-10, 5, 2, delta + 2)
    assert steeper < floor


def test_higher_delta_needs_weaker_start():
    # For the same seed family, the Delta = 6 tree has more neighbors to
    # collide with: the 0-round uniform floor c^-Delta is smaller, but a
    # 1-round algorithm's failure is *larger* relative to it.
    p4 = node_local_failure(local_maximum_coloring(2, bits=1), method="exact").as_float()
    p6 = node_local_failure(local_maximum_coloring(3, bits=1), method="exact").as_float()
    assert p6 > 0 and p4 > 0
