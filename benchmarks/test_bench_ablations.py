"""Benchmark: ablations of the design choices DESIGN.md calls out.

1. The frequency threshold ``f``: sweep it around the paper's choice
   and confirm the optimizing value is competitive (the paper's ``f``
   maximizes the *bound*, not the measured failure, so we assert it is
   never far from the sweep's best).
2. Exact enumeration vs Monte Carlo failure estimation: accuracy and
   cost trade-off.
3. The P* fast path (acyclic batch Dijkstra) vs the general cycle-aware
   path: identical labelings on trees, with the fast path winning time.
"""

import random
import time
from fractions import Fraction

import pytest

from repro.algorithms.pointer_solver import _solve_pstar_acyclic, solve_pstar_partial
from repro.graphs import balanced_regular_tree, sequential_ids
from repro.lcl import PStar
from repro.speedup import (
    edge_local_failure,
    first_speedup,
    local_maximum_coloring,
    node_local_failure,
    paper_threshold_first,
)


class TestThresholdAblation:
    def test_bench_threshold_sweep(self, benchmark):
        seed = local_maximum_coloring(2, bits=1)
        p = node_local_failure(seed, method="exact").as_float()
        paper_f = paper_threshold_first(p, seed.palette, seed.delta)

        def sweep():
            rows = []
            for f in (Fraction(1, 100), Fraction(1, 10), paper_f, Fraction(1, 2),
                      Fraction(9, 10)):
                edge = first_speedup(seed, f)
                rows.append((f, edge_local_failure(edge, method="exact").as_float()))
            return rows

        rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
        failures = dict(rows)
        best = min(failures.values())
        # The paper's threshold is within a constant factor of the
        # sweep's best measured failure (it optimizes the bound).
        assert failures[paper_f] <= max(10 * best, 1.0)

    def test_midrange_threshold_collapses_this_seed(self):
        # For the local-maximum seed, f = 1/2 lands above P(color 1) for
        # every view (a value-3 endpoint is a local max w.p. (3/4)^3 <
        # 1/2) yet below P(color 0): every frequent set degenerates to
        # {0}, the edge coloring becomes constant, and failure is
        # certain.  The paper's optimizing f avoids the collapse.
        seed = local_maximum_coloring(2, bits=2)
        p = node_local_failure(seed, method="exact").as_float()
        paper_f = paper_threshold_first(p, seed.palette, seed.delta)
        edge_paper = first_speedup(seed, paper_f)
        edge_mid = first_speedup(seed, Fraction(1, 2))
        p_paper = edge_local_failure(edge_paper, method="exact").as_float()
        p_mid = edge_local_failure(edge_mid, method="exact").as_float()
        assert p_mid == 1.0
        assert p_paper < p_mid


class TestEstimatorAblation:
    def test_bench_exact_vs_monte_carlo(self, benchmark):
        seed = local_maximum_coloring(2, bits=1)
        exact = node_local_failure(seed, method="exact").as_float()

        def estimate(samples):
            return node_local_failure(
                seed, method="monte_carlo", samples=samples, rng=random.Random(0)
            ).as_float()

        mc = benchmark.pedantic(estimate, args=(20_000,), rounds=1, iterations=1)
        assert abs(mc - exact) < 0.02

    def test_monte_carlo_converges(self):
        seed = local_maximum_coloring(2, bits=1)
        exact = node_local_failure(seed, method="exact").as_float()
        errors = []
        for samples in (500, 5_000, 50_000):
            mc = node_local_failure(
                seed, method="monte_carlo", samples=samples, rng=random.Random(1)
            ).as_float()
            errors.append(abs(mc - exact))
        assert errors[-1] <= errors[0] + 0.01


class TestPStarFastPathAblation:
    def test_fast_and_general_paths_agree_on_trees(self):
        tree = balanced_regular_tree(4, 4)
        ids = sequential_ids(tree)
        fast = _solve_pstar_acyclic(tree, 4, 4, ids)
        general = solve_pstar_partial(tree, 4, 4, ids)  # dispatches to fast
        assert fast.labels == general.labels
        assert not PStar(4).verify(tree, fast.labels)

    def test_bench_fast_path(self, benchmark):
        tree = balanced_regular_tree(4, 7)
        ids = sequential_ids(tree)
        sol = benchmark.pedantic(
            _solve_pstar_acyclic, args=(tree, 4, 7, ids), rounds=1, iterations=1
        )
        assert all(label is not None for label in sol.labels)
