"""Benchmark: Table 1 row 3's Theta(log* n), made visible.

``log* n <= 5`` for any feasible n, so the log* growth is exhibited by
sweeping the identifier space across tower sizes: the weak-2-coloring
pipeline's round count must track the Cole-Vishkin iteration count,
growing by ~1 per exponentiation of the space.
"""

import pytest

from repro.experiments import run_logstar_sweep

ID_BITS = (8, 64, 1024, 16384, 65536)


@pytest.fixture(scope="module")
def sweep():
    return run_logstar_sweep(id_bits=ID_BITS, tree_depth=3)


def test_bench_logstar_sweep(benchmark):
    result = benchmark.pedantic(
        run_logstar_sweep,
        kwargs={"id_bits": ID_BITS, "tree_depth": 3},
        rounds=1,
        iterations=1,
    )
    assert all(p.verified for p in result.points)


def test_rounds_monotone_in_space(sweep):
    assert sweep.monotone_in_log_star()


def test_rounds_grow_across_towers(sweep):
    first, last = sweep.points[0], sweep.points[-1]
    assert last.measured_rounds > first.measured_rounds


def test_growth_tracks_cv_prediction(sweep):
    # Measured deltas equal the predicted CV-iteration deltas: the log*
    # mechanism and nothing else moves the round count.
    for a, b in zip(sweep.points, sweep.points[1:]):
        measured_delta = b.measured_rounds - a.measured_rounds
        predicted_delta = b.predicted_cv_rounds - a.predicted_cv_rounds
        assert measured_delta == predicted_delta


def test_growth_is_sublogarithmic(sweep):
    # From 8 bits to 65536 bits the space grew by a factor 2^65528 but
    # rounds by only a handful — that is the log* signature.
    spread = sweep.points[-1].measured_rounds - sweep.points[0].measured_rounds
    assert 1 <= spread <= 6
