"""Benchmark: Theorem 4 — P* is Theta(log_Delta n).

Upper bound: the Lemma 17 solver's radius across an n-sweep fits a log
curve.  Lower bound: the Lemma 18 pair is view-indistinguishable at the
center up to radius depth-2 while forcing contradictory outputs.
"""

import math

import pytest

from repro.experiments import run_theorem4

SIZES = (50, 200, 800, 3200, 12800)


@pytest.fixture(scope="module")
def theorem4():
    return run_theorem4(delta=4, sizes=SIZES, witness_depths=(2, 3, 4))


def test_bench_theorem4(benchmark):
    result = benchmark.pedantic(
        run_theorem4,
        kwargs={"delta": 4, "sizes": SIZES, "witness_depths": (2, 3)},
        rounds=1,
        iterations=1,
    )
    assert result.all_verified()


def test_upper_bound_is_logarithmic(theorem4):
    assert theorem4.fit.best == "log"
    rounds = [p.rounds for p in theorem4.upper]
    ns = [p.n for p in theorem4.upper]
    # Rounds per doubling of log n stay bounded: ratio to log2(n) is
    # roughly constant (within a factor 3 across the sweep).
    ratios = [r / math.log2(n) for n, r in zip(ns, rounds)]
    assert max(ratios) <= 3 * min(ratios)


def test_lower_bound_witnesses(theorem4):
    for w in theorem4.witnesses:
        assert w.views_equal_radius >= w.depth - 2
        assert w.center_d_on_t != w.center_d_on_t_prime
        assert w.contradiction


def test_radius_grows_one_per_depth(theorem4):
    radii = [p.radius for p in theorem4.upper]
    deltas = [b - a for a, b in zip(radii, radii[1:])]
    assert all(d >= 1 for d in deltas)  # deeper tree, strictly larger radius


def test_delta6_also_logarithmic():
    result = run_theorem4(delta=6, sizes=(50, 400, 3200), witness_depths=(2, 3))
    assert result.all_verified()
    rounds = [p.rounds for p in result.upper]
    assert rounds == sorted(rounds)
