"""Benchmark regression guard for the batched Monte Carlo trial kernels.

Measures what ``layout="kernel"`` actually replaces in the speedup
pipeline's Monte Carlo stages: the scalar per-trial loop of
:func:`repro.speedup.finite_runner.estimate_global_success` (one
``rng.randrange`` call per node per trial, one ``evaluate`` per node)
against the batched distinct-assignment kernel
(:mod:`repro.speedup.trial_kernel`), plus the sample loop of
:func:`repro.speedup.failure.node_local_failure`'s Monte Carlo branch.
Asserts

* the headline claim: **>= 10x speedup** on ``estimate_global_success``
  at ``trials=2000`` on the 67x66 torus (n=4422 >= the 4373-node grid
  the round-kernel benchmark pins) — the number ``docs/PERFORMANCE.md``
  quotes;
* no regression: each cell's speedup stays within **2x** of the
  committed baseline (the last entry of
  ``benchmarks/BENCH_speedup_kernels.json``) — a ratio of two timings
  on the same machine, so machine-independent;
* exactness, on every timed repeat: the same estimate, the same
  per-trial ``on_trial`` sequence (index, outcome, failing count), and
  the same final ``rng`` state as the reference loop.  A kernel that
  silently declined would "win" by 1x and fail the headline bar; one
  that drifted off the Mersenne-Twister stream fails the state check.

The headline reference costs ~2000 * 4422 scalar draws and evaluations
(tens of seconds), so it is timed once per session while the kernel is
timed ``_REPEATS`` times, identity asserted on every timed repeat
against that one reference run.

Run with ``BENCH_UPDATE=1`` to append the current measurements as a new
trajectory entry (and commit the json); plain runs never write.
"""

from __future__ import annotations

import json
import os
import random
import time
from typing import Any, Dict

import pytest

from repro.graphs.generators import toroidal_grid
from repro.graphs.orientation import orient_torus
from repro.instrumentation.tracer import Tracer
from repro.speedup.algorithms import (
    local_maximum_coloring,
    smaller_count_coloring,
)
from repro.speedup.failure import node_local_failure
from repro.speedup.finite_runner import estimate_global_success

BENCH_PATH = os.path.join(
    os.path.dirname(__file__), "BENCH_speedup_kernels.json"
)

#: The measured grid.  Keep keys stable: they index the json trajectory.
#: ``ref_repeats`` bounds how often the slow scalar loop is timed (the
#: headline reference runs ~8.8M scalar draws; once is plenty).
CONFIGS = {
    "torus-67x66-local-max-trials2000": {
        "kind": "estimate", "algorithm": "local-maximum", "bits": 1,
        "rows": 67, "cols": 66, "trials": 2000, "seed": 11,
        "ref_repeats": 1,
    },
    "torus-23x24-smaller-count-trials400": {
        "kind": "estimate", "algorithm": "smaller-count", "bits": 1,
        "rows": 23, "cols": 24, "trials": 400, "seed": 5,
        "ref_repeats": 3,
    },
    "node-mc-local-max-samples200k": {
        "kind": "node-mc", "algorithm": "local-maximum", "bits": 1,
        "samples": 200_000, "seed": 3, "ref_repeats": 3,
    },
}

#: The cell that must meet the headline >= 10x bar: the full batched
#: trial pipeline at trials=2000 on n=4422 (the tentpole's acceptance
#: criterion).
HEADLINE_MIN_SPEEDUP = 10.0
HEADLINE_CONFIGS = ("torus-67x66-local-max-trials2000",)

#: Regression tolerance against the committed baseline speedup.
BASELINE_TOLERANCE = 2.0

_REPEATS = 5

_FACTORIES = {
    "local-maximum": local_maximum_coloring,
    "smaller-count": smaller_count_coloring,
}


class _TrialLog(Tracer):
    """Records the exact ``on_trial`` sequence a run emits."""

    def __init__(self) -> None:
        self.events = []

    def on_trial(self, index, succeeded, failing_nodes):
        self.events.append((index, succeeded, failing_nodes))


def _measure_estimate(config: Dict[str, Any]) -> Dict[str, Any]:
    alg = _FACTORIES[config["algorithm"]](2, config["bits"])
    rows, cols = config["rows"], config["cols"]
    graph = toroidal_grid(rows, cols)
    orientation = orient_torus(graph, rows, cols)
    trials, seed = config["trials"], config["seed"]

    def run(layout, log):
        rng = random.Random(seed)
        start = time.perf_counter()
        estimate = estimate_global_success(
            alg, graph, orientation, trials,
            rng=rng, tracer=log, layout=layout,
        )
        return time.perf_counter() - start, estimate, rng.getstate()

    # Untimed warmup: fault in the kernel arrays and let the CPU leave
    # its idle frequency state.
    run("kernel", None)
    ref_times = []
    ref_log = _TrialLog()
    for _ in range(config["ref_repeats"]):
        elapsed, ref_estimate, ref_state = run("scalar", ref_log)
        ref_times.append(elapsed)
        ref_log, last_log = _TrialLog(), ref_log
    kernel_times = []
    for _ in range(_REPEATS):
        log = _TrialLog()
        elapsed, estimate, state = run("kernel", log)
        kernel_times.append(elapsed)
        # Exactness on every timed repeat: same estimate, same
        # per-trial outcomes, same final Mersenne-Twister state.  A
        # declined batch would match bit-for-bit but lose the headline
        # speedup assertion instead of passing silently.
        assert estimate == ref_estimate
        assert log.events == last_log.events
        assert state == ref_state
    ref_s, kernel_s = min(ref_times), min(kernel_times)
    return {
        "n": graph.n,
        "trials": trials,
        "successes": sum(1 for _, ok, _ in last_log.events if ok),
        "reference_seconds": round(ref_s, 6),
        "kernel_seconds": round(kernel_s, 6),
        "speedup": round(ref_s / kernel_s, 3),
    }


def _measure_node_mc(config: Dict[str, Any]) -> Dict[str, Any]:
    alg = _FACTORIES[config["algorithm"]](2, config["bits"])
    samples, seed = config["samples"], config["seed"]

    def run(layout):
        rng = random.Random(seed)
        start = time.perf_counter()
        estimate = node_local_failure(
            alg, method="monte_carlo", samples=samples,
            rng=rng, layout=layout,
        )
        return time.perf_counter() - start, estimate, rng.getstate()

    run("kernel")
    ref_times = []
    for _ in range(config["ref_repeats"]):
        elapsed, ref_estimate, ref_state = run("auto")
        ref_times.append(elapsed)
    kernel_times = []
    for _ in range(_REPEATS):
        elapsed, estimate, state = run("kernel")
        kernel_times.append(elapsed)
        assert estimate.probability == ref_estimate.probability
        assert not estimate.exact and estimate.samples == samples
        assert state == ref_state
    ref_s, kernel_s = min(ref_times), min(kernel_times)
    return {
        "n": alg.ball.size,
        "trials": samples,
        "successes": round(float(ref_estimate.probability) * samples),
        "reference_seconds": round(ref_s, 6),
        "kernel_seconds": round(kernel_s, 6),
        "speedup": round(ref_s / kernel_s, 3),
    }


_MEASURERS = {"estimate": _measure_estimate, "node-mc": _measure_node_mc}


def _measure(config: Dict[str, Any]) -> Dict[str, Any]:
    return _MEASURERS[config["kind"]](config)


def _load_bench() -> Dict[str, Any]:
    with open(BENCH_PATH, encoding="utf-8") as fh:
        return json.load(fh)


def _baseline() -> Dict[str, Any]:
    """The most recent committed trajectory entry."""
    return _load_bench()["trajectory"][-1]["results"]


@pytest.fixture(scope="module")
def measurements() -> Dict[str, Dict[str, Any]]:
    results = {name: _measure(config) for name, config in CONFIGS.items()}
    if os.environ.get("BENCH_UPDATE") == "1":
        data = _load_bench()
        data["trajectory"].append(
            {"entry": len(data["trajectory"]) + 1, "results": results}
        )
        with open(BENCH_PATH, "w", encoding="utf-8") as fh:
            json.dump(data, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return results


def test_baseline_file_is_committed():
    data = _load_bench()
    assert data["schema"] == "repro.bench-speedup-kernels/1"
    assert data["trajectory"], "baseline trajectory must not be empty"
    assert set(_baseline()) == set(CONFIGS)


@pytest.mark.parametrize("name", sorted(HEADLINE_CONFIGS))
def test_headline_speedup_on_batched_trials(measurements, name):
    result = measurements[name]
    assert result["n"] >= 4373
    assert result["trials"] >= 2000
    assert result["speedup"] >= HEADLINE_MIN_SPEEDUP, (
        f"{name}: trial kernel is only {result['speedup']}x faster "
        f"(need >= {HEADLINE_MIN_SPEEDUP}x)"
    )


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_speedup_within_tolerance_of_baseline(measurements, name):
    baseline = _baseline()[name]
    current = measurements[name]
    floor = baseline["speedup"] / BASELINE_TOLERANCE
    assert current["speedup"] >= floor, (
        f"{name}: speedup regressed to {current['speedup']}x, more than "
        f"{BASELINE_TOLERANCE}x below the committed {baseline['speedup']}x"
    )


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_outcomes_are_deterministic(measurements, name):
    # Success counts are functions of the seed and configuration alone
    # (the stream-faithfulness the golden pins in
    # tests/test_seed_stability.py freeze); a drift here means the
    # draw order changed.
    baseline = _baseline()[name]
    current = measurements[name]
    assert current["n"] == baseline["n"]
    assert current["trials"] == baseline["trials"]
    assert current["successes"] == baseline["successes"]
