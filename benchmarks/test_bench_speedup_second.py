"""Benchmark: Figure 2 / Lemma 8 — the second speedup lemma, quantitative.

From edge algorithms (built by Lemma 7 from the seed battery), construct
the same-radius node algorithm and measure its exact weak-coloring
failure; assert ``p' <= 4 p^{1/4} c^{3/4}`` (Delta = 4) and the palette
law ``c' = 2^{4c}``, plus the end-to-end round-trip pipeline (the two
figures composed).
"""

import pytest

from repro.speedup import (
    edge_local_failure,
    first_speedup,
    local_maximum_coloring,
    node_local_failure,
    paper_threshold_first,
    paper_threshold_second,
    run_speedup_pipeline,
    second_lemma_bound,
    second_speedup,
    smaller_count_coloring,
)

SEEDS = [
    ("local-maximum-b1", lambda: local_maximum_coloring(2, bits=1)),
    ("smaller-count-b1", lambda: smaller_count_coloring(2, bits=1)),
]


def _edge_from(seed):
    p = node_local_failure(seed, method="exact").as_float()
    f = paper_threshold_first(p, seed.palette, seed.delta)
    return first_speedup(seed, f)


@pytest.mark.parametrize("name,make", SEEDS, ids=[s[0] for s in SEEDS])
def test_bench_second_speedup(benchmark, name, make):
    seed = make()
    edge = _edge_from(seed)
    p_edge = edge_local_failure(edge, method="exact").as_float()
    f = paper_threshold_second(p_edge, edge.palette, edge.delta)

    def transform_and_measure():
        node = second_speedup(edge, f)
        return node, node_local_failure(node, method="exact")

    node, p_node = benchmark.pedantic(transform_and_measure, rounds=1, iterations=1)

    # Palette law of Lemma 8 (2k = 4 incident edges).
    assert node.palette.log2().to_float() == 4 * edge.palette.to_float()
    # Radius preserved by the second lemma.
    assert node.t == edge.r
    # The lemma bound holds with exact arithmetic.
    bound = second_lemma_bound(p_edge, edge.palette, edge.delta)
    assert p_node.exact
    assert p_node.as_float() <= bound + 1e-12


def test_bench_full_round_trip(benchmark):
    """The composed pipeline (Figures 1 + 2): one full round elimination."""
    seed = local_maximum_coloring(2, bits=1)
    result = benchmark.pedantic(
        run_speedup_pipeline, args=(seed,), kwargs={"method": "exact"}, rounds=1,
        iterations=1,
    )
    assert result.stages[0].radius == 1
    assert result.stages[-1].radius == 0
    assert result.all_bounds_hold()


def test_round_trip_failure_grows():
    # Each elimination trades rounds for failure probability: the final
    # 0-round failure is at least the seed's (speedups don't improve
    # algorithms, they only shorten them).
    seed = smaller_count_coloring(2, bits=1)
    result = run_speedup_pipeline(seed, method="exact")
    assert result.final_failure() >= result.stages[0].measured_failure.as_float() - 1e-12
