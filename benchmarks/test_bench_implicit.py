"""Benchmark regression guard for the implicit graph families.

Measures the tentpole claim of the implicit refactor: exact class
structure at n >= 10^6 with O(distinct classes) memory, three orders of
magnitude past the n~4700 ceiling every materialized trajectory stops
at.  Cells:

* ``cycle-1e6-r2`` / ``torus-1e6-r2`` / ``tree-1e6-r2`` — headline
  cells: exact radius-2 class multiplicities on a million-node family
  via closed-form strata.  Each repeat runs the counter cold (fresh
  expander) under ``tracemalloc`` and records peak traced memory; the
  guard pins the exact class count and representative list (machine
  independent) and caps peak memory at 64 MB — hundreds of MB under
  what materializing 10^6 nodes costs, so a materialized path sneaking
  in fails immediately.
* ``tree-overlap-r2`` — the speed cell at the n=4373 overlap where the
  materialized path still runs: implicit ``class_counts`` (timed) vs
  the materialized full-partition expander (timed), **bit-identity of
  keys/reps/multiplicities asserted inside the timed loop**, headline
  >= 5x speedup (a few dozen strata windows vs a full blocked BFS over
  every node), and the standard 2x baseline-ratio regression guard —
  a ratio of two timings on one machine, so machine independent.

Run with ``BENCH_UPDATE=1`` to append the current measurements as a new
trajectory entry (and commit the json); plain runs never write.
"""

from __future__ import annotations

import json
import os
import time
import tracemalloc
from typing import Any, Dict

import pytest

from repro.graphs import (
    ImplicitCycle,
    ImplicitTorus,
    implicit_tree_of_size_at_least,
)
from repro.local_model.batch_views import (
    BatchBallExpander,
    ImplicitBallExpander,
)

BENCH_PATH = os.path.join(os.path.dirname(__file__), "BENCH_implicit.json")

#: The measured grid.  Keep keys stable: they index the json trajectory.
CONFIGS = {
    "cycle-1e6-r2": {"kind": "headline", "family": "cycle", "radius": 2},
    "torus-1e6-r2": {"kind": "headline", "family": "torus", "radius": 2},
    "tree-1e6-r2": {"kind": "headline", "family": "tree", "radius": 2},
    "tree-overlap-r2": {"kind": "overlap", "family": "tree", "radius": 2},
}

#: Headline instance size the 1e6 cells build their family at.
HEADLINE_N = 1_000_000

#: Peak traced memory each headline cell must stay under (MB).  A
#: materialized 10^6-node dict graph alone costs hundreds of MB.
HEADLINE_PEAK_MB = 64.0

#: The overlap cell's speedup floor: counting a few dozen strata
#: windows must beat a full blocked BFS over all n=4373 nodes.
HEADLINE_MIN_SPEEDUP = 5.0

#: Regression tolerance against the committed baseline speedup.
BASELINE_TOLERANCE = 2.0

_REPEATS = 3


def _headline_handle(family: str):
    if family == "cycle":
        return ImplicitCycle(HEADLINE_N)
    if family == "torus":
        return ImplicitTorus(1000, 1000)
    return implicit_tree_of_size_at_least(4, HEADLINE_N)[0]


def _measure_headline(config: Dict[str, Any]) -> Dict[str, Any]:
    radius = config["radius"]
    times, peaks = [], []
    classes = reps = total = None
    for _ in range(_REPEATS):
        handle = _headline_handle(config["family"])  # fresh, cold caches
        tracemalloc.start()
        start = time.perf_counter()
        cc = ImplicitBallExpander(handle).class_counts(radius)
        times.append(time.perf_counter() - start)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        peaks.append(peak)
        classes, reps, total = cc.class_count, list(cc.reps), cc.total
    return {
        "n": total,
        "classes": classes,
        "reps": reps,
        "seconds": round(min(times), 6),
        "peak_mb": round(max(peaks) / (1024 * 1024), 3),
    }


def _measure_overlap(config: Dict[str, Any]) -> Dict[str, Any]:
    radius = config["radius"]
    handle, _ = implicit_tree_of_size_at_least(4, 4000)  # n=4373 overlap
    materialized = handle.materialized()
    # Untimed warmup compiles the CSR arrays + expander buffers once.
    BatchBallExpander(materialized).node_classes(radius)
    ImplicitBallExpander(handle).class_counts(radius)

    imp_times, ref_times = [], []
    classes = None
    for _ in range(_REPEATS):
        start = time.perf_counter()
        cc = ImplicitBallExpander(handle).class_counts(radius)
        imp_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        part = BatchBallExpander(materialized).node_classes(radius)
        ref_times.append(time.perf_counter() - start)
        # Exactness, inside the timed loop, every repeat: the speedup
        # only counts because the answers are bit-identical.
        assert cc.keys == part.keys
        assert list(cc.reps) == list(part.reps)
        bincount = [0] * part.class_count
        for label in part.labels:
            bincount[label] += 1
        assert list(cc.counts) == bincount
        classes = cc.class_count
    ref_s, imp_s = min(ref_times), min(imp_times)
    return {
        "n": handle.n,
        "classes": classes,
        "reference_seconds": round(ref_s, 6),
        "implicit_seconds": round(imp_s, 6),
        "speedup": round(ref_s / imp_s, 3),
    }


def _measure(config: Dict[str, Any]) -> Dict[str, Any]:
    if config["kind"] == "headline":
        return _measure_headline(config)
    return _measure_overlap(config)


def _load_bench() -> Dict[str, Any]:
    with open(BENCH_PATH, encoding="utf-8") as fh:
        return json.load(fh)


def _baseline() -> Dict[str, Any]:
    """The most recent committed trajectory entry."""
    return _load_bench()["trajectory"][-1]["results"]


@pytest.fixture(scope="module")
def measurements() -> Dict[str, Dict[str, Any]]:
    results = {name: _measure(config) for name, config in CONFIGS.items()}
    if os.environ.get("BENCH_UPDATE") == "1":
        data = _load_bench()
        data["trajectory"].append(
            {"entry": len(data["trajectory"]) + 1, "results": results}
        )
        with open(BENCH_PATH, "w", encoding="utf-8") as fh:
            json.dump(data, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return results


def test_baseline_file_is_committed():
    data = _load_bench()
    assert data["schema"] == "repro.bench-implicit/1"
    assert data["trajectory"], "baseline trajectory must not be empty"
    assert set(_baseline()) == set(CONFIGS)


@pytest.mark.parametrize(
    "name", sorted(n for n, c in CONFIGS.items() if c["kind"] == "headline")
)
def test_headline_cells_stay_exact_and_small(measurements, name):
    baseline = _baseline()[name]
    current = measurements[name]
    assert current["n"] >= HEADLINE_N
    # Class structure is a function of the closed forms alone.
    assert current["n"] == baseline["n"]
    assert current["classes"] == baseline["classes"]
    assert current["reps"] == baseline["reps"]
    assert current["peak_mb"] <= HEADLINE_PEAK_MB, (
        f"{name}: peak traced memory {current['peak_mb']} MB exceeds the "
        f"{HEADLINE_PEAK_MB} MB ceiling — a materialized path leaked in"
    )


def test_overlap_headline_speedup(measurements):
    result = measurements["tree-overlap-r2"]
    assert result["n"] == 4373
    assert result["speedup"] >= HEADLINE_MIN_SPEEDUP, (
        f"implicit class counting is only {result['speedup']}x faster than "
        f"the materialized full partition (need >= {HEADLINE_MIN_SPEEDUP}x)"
    )


def test_overlap_speedup_within_tolerance_of_baseline(measurements):
    baseline = _baseline()["tree-overlap-r2"]
    current = measurements["tree-overlap-r2"]
    assert current["classes"] == baseline["classes"]
    floor = baseline["speedup"] / BASELINE_TOLERANCE
    assert current["speedup"] >= floor, (
        f"tree-overlap-r2: speedup regressed to {current['speedup']}x, more "
        f"than {BASELINE_TOLERANCE}x below the committed "
        f"{baseline['speedup']}x"
    )
