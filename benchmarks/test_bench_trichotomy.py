"""Benchmark: the introduction's cycle trichotomy.

Cycles host exactly three LCL classes — O(1), Theta(log* n), Theta(n) —
and the three representative algorithms land in them measurably.
"""

import pytest

from repro.experiments import run_cycle_trichotomy

SIZES = (16, 64, 256, 1024)


@pytest.fixture(scope="module")
def trichotomy():
    return run_cycle_trichotomy(sizes=SIZES)


def test_bench_trichotomy(benchmark):
    result = benchmark.pedantic(
        run_cycle_trichotomy, kwargs={"sizes": SIZES}, rounds=1, iterations=1
    )
    assert all(row.all_verified for row in result.rows)


def test_three_distinct_classes(trichotomy):
    assert [row.fit.best for row in trichotomy.rows] == [
        "constant",
        "log_star",
        "linear",
    ]


def test_separations_at_largest_n(trichotomy):
    trivial = trichotomy.rows[0].measurements[-1][1]
    local = trichotomy.rows[1].measurements[-1][1]
    global_ = trichotomy.rows[2].measurements[-1][1]
    assert trivial < local < global_
    # The local row is orders of magnitude below the global row.
    assert local * 10 < global_


def test_global_row_is_half_n(trichotomy):
    for n, rounds in trichotomy.rows[2].measurements:
        assert rounds == n // 2
