"""Benchmark: Claims 11-12, Lemma 9, Theorem 13 — the quantitative chain.

Evaluates the palette towers, the failure floors, and the Theorem 13
crossover with tower arithmetic, asserting every monotonicity and the
crossover's exact position.
"""

import pytest

from repro.analysis import (
    claim11_failure_floor_log2,
    lemma9_evaluate,
    palette_trajectory,
    theorem13_crossover_height,
    tower,
)
from repro.experiments import run_recurrence_experiment


def test_bench_recurrence(benchmark):
    result = benchmark.pedantic(
        run_recurrence_experiment,
        kwargs={"ts": (1, 2, 3), "deltas": (4, 6), "heights": (8, 10, 12, 14)},
        rounds=1,
        iterations=1,
    )
    assert result.crossover_height == 10


def test_palette_towers_grow_two_stars_per_round():
    traj = palette_trajectory(5, 4)
    stars = [c.log_star() for c in traj]
    deltas = [b - a for a, b in zip(stars[1:], stars[2:])]
    assert all(d == 2 for d in deltas)  # two exponentials per round trip


def test_claim11_floor_shrinks_quintupling():
    # The exponent is (Delta+1)^(2t+1): each extra round multiplies the
    # log-floor by 25 at Delta = 4.
    floors = [claim11_failure_floor_log2(-10, 5, t, 4) for t in (1, 2, 3)]
    assert abs(floors[1] / floors[0] - 25) < 1e-9
    assert abs(floors[2] / floors[1] - 25) < 1e-9


def test_claim16_generalized_base():
    # At general Delta the base is (Delta+1)^2 per extra round.
    for delta in (6, 8, 10):
        floors = [claim11_failure_floor_log2(-10, 5, t, delta) for t in (1, 2)]
        assert abs(floors[1] / floors[0] - (delta + 1) ** 2) < 1e-9


def test_theorem13_crossover_position():
    assert theorem13_crossover_height(b=1) == 10


def test_lemma9_regime_boundary_exact():
    # t = log*(n)/2 - b - 3 >= 1 opens at log* n = 10 for b = 1.
    assert not lemma9_evaluate(tower(9), 1).regime_reached
    assert lemma9_evaluate(tower(10), 1).regime_reached


def test_below_half_persists_beyond_crossover():
    for h in (10, 12, 16, 24):
        assert lemma9_evaluate(tower(h), 1).below_half


def test_larger_b_needs_taller_towers():
    h1 = theorem13_crossover_height(b=1)
    h2 = theorem13_crossover_height(b=2)
    h3 = theorem13_crossover_height(b=3)
    assert h1 < h2 < h3
