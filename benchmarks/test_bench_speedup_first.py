"""Benchmark: Figure 1 / Lemma 7 — the first speedup lemma, quantitative.

From each seed node algorithm, construct the (t-1)-round edge algorithm
and measure its exact weak-edge-coloring failure; assert the lemma's
guarantee ``p' <= 5 p^{1/5} c^{4/5}`` (Delta = 4) and the palette law
``c' = 2^{2c}``.
"""

from fractions import Fraction

import pytest

from repro.speedup import (
    edge_local_failure,
    first_lemma_bound,
    first_speedup,
    local_maximum_coloring,
    node_local_failure,
    paper_threshold_first,
    smaller_count_coloring,
)

SEEDS = [
    ("local-maximum-b1", lambda: local_maximum_coloring(2, bits=1)),
    ("local-maximum-b2", lambda: local_maximum_coloring(2, bits=2)),
    ("smaller-count-b1", lambda: smaller_count_coloring(2, bits=1)),
]


@pytest.mark.parametrize("name,make", SEEDS, ids=[s[0] for s in SEEDS])
def test_bench_first_speedup(benchmark, name, make):
    seed = make()
    p = node_local_failure(seed, method="exact").as_float()
    f = paper_threshold_first(p, seed.palette, seed.delta)

    def transform_and_measure():
        edge = first_speedup(seed, f)
        return edge, edge_local_failure(edge, method="exact")

    edge, p_edge = benchmark.pedantic(transform_and_measure, rounds=1, iterations=1)

    # Palette law of Lemma 7.
    assert edge.palette.to_float() == 2.0 ** (2 * seed.palette.to_float())
    # Radius drops by one.
    assert edge.r == seed.t - 1
    # The lemma bound holds with exact arithmetic.
    bound = first_lemma_bound(p, seed.palette, seed.delta)
    assert p_edge.exact
    assert p_edge.as_float() <= bound + 1e-12


def test_first_speedup_failure_relationship():
    # Across seeds, a lower node failure gives the edge algorithm more
    # room: the measured edge failures respect relative ordering of the
    # bounds.
    rows = []
    for _, make in SEEDS:
        seed = make()
        p = node_local_failure(seed, method="exact").as_float()
        f = paper_threshold_first(p, seed.palette, seed.delta)
        edge = first_speedup(seed, f)
        p_edge = edge_local_failure(edge, method="exact").as_float()
        rows.append((p, p_edge, first_lemma_bound(p, seed.palette, seed.delta)))
    for p, p_edge, bound in rows:
        assert p_edge <= bound + 1e-12


def test_first_speedup_threshold_extremes():
    seed = local_maximum_coloring(2, bits=1)
    # f = 0: every achievable color is frequent -> maximal sets -> the
    # edge coloring is as coarse as possible (failure maximal).
    loose = first_speedup(seed, Fraction(0))
    tight = first_speedup(seed, Fraction(1))
    p_loose = edge_local_failure(loose, method="exact").as_float()
    p_tight = edge_local_failure(tight, method="exact").as_float()
    assert 0 <= p_tight <= 1 and 0 <= p_loose <= 1
