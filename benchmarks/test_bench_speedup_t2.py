"""Benchmark: the double round trip — Claim 11's induction with 2 steps.

A genuine 2-round seed walked down 2 -> 1 -> 0 through two full
applications of Lemmas 7 and 8.  The nominal palette crosses the float
horizon on the second trip (2^(2^1024)-scale) — tower arithmetic takes
over — while the measured failure probabilities stay exact from the
first transformation on (only the seed's own failure needs sampling).
"""

import pytest

from repro.speedup import (
    NodeAlgorithm,
    run_speedup_pipeline,
    two_round_local_maximum,
)


def bit_and_parity_seed() -> NodeAlgorithm:
    """(own bit, radius-2 ball parity): a non-degenerate 2-round seed."""
    return NodeAlgorithm(
        2, 2, 1, 4, lambda a: (a[0], sum(a) % 2), name="bit-and-parity"
    )


@pytest.fixture(scope="module")
def double_trip():
    return run_speedup_pipeline(bit_and_parity_seed(), method="auto", samples=20_000)


def test_bench_double_round_trip(benchmark):
    result = benchmark.pedantic(
        run_speedup_pipeline,
        args=(bit_and_parity_seed(),),
        kwargs={"method": "auto", "samples": 20_000},
        rounds=1,
        iterations=1,
    )
    assert result.all_bounds_hold()


def test_ladder_shape(double_trip):
    kinds = [(s.kind, s.radius) for s in double_trip.stages]
    assert kinds == [
        ("node", 2),
        ("edge", 1),
        ("node", 1),
        ("edge", 0),
        ("node", 0),
    ]


def test_palettes_climb_the_tower(double_trip):
    log2s = [s.nominal_palette.log2().to_float() for s in double_trip.stages]
    assert log2s[0] == 2.0  # seed palette 4
    assert log2s[1] == 8.0  # 2^(2*4)
    assert log2s[2] == 1024.0  # 2^(4*256)
    assert log2s[3] == float("inf")  # 2^(2*2^1024): beyond floats
    assert double_trip.stages[3].nominal_palette.log_star() >= 4


def test_all_transformed_stages_exact(double_trip):
    # Only the seed's failure needs Monte Carlo; the ladder is exact.
    assert not double_trip.stages[0].measured_failure.exact
    for stage in double_trip.stages[1:]:
        assert stage.measured_failure.exact


def test_bounds_hold_including_tower_stages(double_trip):
    assert double_trip.all_bounds_hold()
    # Tower-palette stages have vacuous (inf) ceilings — faithfully so.
    assert double_trip.stages[-1].lemma_bound == float("inf")


def test_degenerate_two_round_seed_also_survives():
    # two_round_local_maximum at 1 bit has failure 1 (being a strict
    # radius-2 maximum needs more than a bit); the pipeline still runs
    # and the bounds hold trivially.
    result = run_speedup_pipeline(
        two_round_local_maximum(2, bits=1), method="auto", samples=5_000
    )
    assert result.all_bounds_hold()
    assert result.final_failure() == 1.0
