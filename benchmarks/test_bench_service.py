"""Benchmark regression guard for the service engine and daemon.

Two measurement families:

* **Warm-vs-cold speedup** — on the Δ ∈ {4, 6} balanced regular trees
  the CSR and incremental benchmarks pin (n=4373 and n=4687,
  ball-signature radius 2), each repeat times a *cold*
  :class:`~repro.core.cached.CachedEngine` run on a freshly built
  graph against a *warm* :class:`~repro.core.service.ServiceEngine`
  request served from the cross-request class table, the memoized
  partition, and the warm graph — the daemon's steady state.  Both
  reports are asserted bit-identical to an untimed direct reference
  **inside the timed loop**.  Asserts

  - the headline claim: warm service responses are **>= 3x** faster
    than a cold cached run on both tree sizes (the tentpole's
    acceptance criterion; the observed ratio is far higher — the warm
    path skips partitioning entirely);
  - no regression: each cell's speedup stays within **2x** of the
    committed baseline (a ratio of two timings on the same machine,
    so machine-independent);
  - determinism: node and class counts match the baseline exactly.

* **Daemon mixed load** — boots a real ``python -m repro.serve``
  subprocess, fires 30 verified mixed-kind requests from 3 concurrent
  clients, and records p50/p99 latency and aggregate throughput.
  Absolute latencies are machine-dependent, so they are recorded for
  trajectory observability but only sanity-guarded (everything
  completed, zero errors, zero identity mismatches).

Run with ``BENCH_UPDATE=1`` to append the current measurements as a new
trajectory entry (and commit the json); plain runs never write.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict

import pytest

from repro.algorithms.view_rules import make_view_rule
from repro.core import ServiceEngine, SimRequest, simulate
from repro.core.cached import CachedEngine
from repro.core.registry import build_graph
from repro.serve.client import ServiceClient
from repro.serve.loadgen import mixed_specs, run_load, spawn_daemon

BENCH_PATH = os.path.join(os.path.dirname(__file__), "BENCH_service.json")

#: The measured grid.  Keep keys stable: they index the json trajectory.
CONFIGS = {
    "tree-d4-warm-vs-cold-r2": {"family": "tree",
                                "params": {"delta": 4, "depth": 7},
                                "radius": 2},
    "tree-d6-warm-vs-cold-r2": {"family": "tree",
                                "params": {"delta": 6, "depth": 5},
                                "radius": 2},
}

LOAD_CELL = "daemon-mixed-load"
LOAD_REQUESTS = 30
LOAD_CLIENTS = 3

#: The tentpole's acceptance bar: warm service vs cold cached engine.
HEADLINE_MIN_SPEEDUP = 3.0

#: Regression tolerance against the committed baseline speedup.
BASELINE_TOLERANCE = 2.0

_REPEATS = 5


def _cold_graph(config: Dict[str, Any]):
    spec = dict(config["params"])
    spec["graph"] = config["family"]
    return build_graph(spec)


def _measure_speedup(config: Dict[str, Any]) -> Dict[str, Any]:
    radius = config["radius"]
    rule = make_view_rule("ball-signature", radius=radius)
    label = f"bench-service-r{radius}"
    reference_graph = _cold_graph(config)
    n = reference_graph.n
    base = simulate(
        SimRequest(kind="view", graph=reference_graph, algorithm=rule,
                   label=label),
        engine="direct",
    )
    engine = ServiceEngine()
    try:
        # Untimed prime: the warm layers the daemon would have built
        # serving earlier traffic (graph, partition, class table).
        warm_graph = engine.warm_graph(config["family"], config["params"])
        engine.run(SimRequest(kind="view", graph=warm_graph, algorithm=rule,
                              label=label))
        cold_times, warm_times = [], []
        classes = 0
        for _ in range(_REPEATS):
            cold_request = SimRequest(
                kind="view", graph=_cold_graph(config), algorithm=rule,
                layout="csr", label=label,
            )
            start = time.perf_counter()
            cold = CachedEngine().run(cold_request)
            cold_times.append(time.perf_counter() - start)
            # A fresh algorithm instance per repeat: warmth must come
            # from the structural key, not object identity.
            warm_request = SimRequest(
                kind="view",
                graph=engine.warm_graph(config["family"], config["params"]),
                algorithm=make_view_rule("ball-signature", radius=radius),
                label=label,
            )
            start = time.perf_counter()
            warm = engine.run(warm_request)
            warm_times.append(time.perf_counter() - start)
            # Exactness, inside the timed loop, every repeat: the
            # speedup only counts because the answers are identical.
            assert cold.identity() == base.identity()
            assert warm.identity() == base.identity()
            assert warm.info["service"]["table_hit"] is True
            classes = cold.info["distinct_classes"]
    finally:
        engine.close()
    cold_s, warm_s = min(cold_times), min(warm_times)
    return {
        "n": n,
        "cold_seconds": round(cold_s, 6),
        "warm_seconds": round(warm_s, 6),
        "speedup": round(cold_s / warm_s, 3),
        "distinct_classes": classes,
    }


def _measure_load() -> Dict[str, Any]:
    proc, host, port = spawn_daemon()
    try:
        summary = run_load(
            host, port, mixed_specs(LOAD_REQUESTS, n=32),
            clients=LOAD_CLIENTS, verify=True,
        )
        with ServiceClient(host, port) as client:
            client.shutdown()
        exit_code = proc.wait(timeout=30)
        proc = None
    finally:
        if proc is not None:
            proc.kill()
            proc.wait()
    return {
        "requests": summary["requests"],
        "completed": summary["completed"],
        "clients": summary["clients"],
        "throughput_rps": round(summary["throughput_rps"], 1),
        "p50_seconds": round(summary["p50_seconds"], 6),
        "p99_seconds": round(summary["p99_seconds"], 6),
        "errors": len(summary["errors"]),
        "identity_mismatches": len(summary["identity_mismatches"]),
        "daemon_exit": exit_code,
    }


def _load_bench() -> Dict[str, Any]:
    with open(BENCH_PATH, encoding="utf-8") as fh:
        return json.load(fh)


def _baseline() -> Dict[str, Any]:
    """The most recent committed trajectory entry."""
    return _load_bench()["trajectory"][-1]["results"]


@pytest.fixture(scope="module")
def measurements() -> Dict[str, Dict[str, Any]]:
    results = {name: _measure_speedup(config)
               for name, config in CONFIGS.items()}
    results[LOAD_CELL] = _measure_load()
    if os.environ.get("BENCH_UPDATE") == "1":
        data = _load_bench()
        data["trajectory"].append(
            {"entry": len(data["trajectory"]) + 1, "results": results}
        )
        with open(BENCH_PATH, "w", encoding="utf-8") as fh:
            json.dump(data, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return results


def test_baseline_file_is_committed():
    data = _load_bench()
    assert data["schema"] == "repro.bench-service/1"
    assert data["trajectory"], "baseline trajectory must not be empty"
    assert set(_baseline()) == set(CONFIGS) | {LOAD_CELL}


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_headline_warm_speedup(measurements, name):
    result = measurements[name]
    assert result["n"] >= 4373
    assert result["speedup"] >= HEADLINE_MIN_SPEEDUP, (
        f"{name}: warm service run is only {result['speedup']}x faster "
        f"than a cold cached run (need >= {HEADLINE_MIN_SPEEDUP}x)"
    )


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_speedup_within_tolerance_of_baseline(measurements, name):
    baseline = _baseline()[name]
    current = measurements[name]
    floor = baseline["speedup"] / BASELINE_TOLERANCE
    assert current["speedup"] >= floor, (
        f"{name}: speedup regressed to {current['speedup']}x, more than "
        f"{BASELINE_TOLERANCE}x below the committed {baseline['speedup']}x"
    )


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_workload_is_deterministic(measurements, name):
    # Node and class counts are functions of the graph family alone.
    baseline = _baseline()[name]
    current = measurements[name]
    assert current["n"] == baseline["n"]
    assert current["distinct_classes"] == baseline["distinct_classes"]


def test_daemon_load_cell_is_clean(measurements):
    result = measurements[LOAD_CELL]
    assert result["completed"] == result["requests"] == LOAD_REQUESTS
    assert result["errors"] == 0
    assert result["identity_mismatches"] == 0
    assert result["daemon_exit"] == 0
    assert result["throughput_rps"] > 0
    assert 0 < result["p50_seconds"] <= result["p99_seconds"]
