"""Benchmark: Claim 10 — independent executions inside a ball.

Runs the expansion construction on concrete oriented trees and checks
the harvested set sizes against the closed form, plus the global
success-probability ceiling it implies.
"""

import pytest

from repro.analysis import claim10_global_success_bound
from repro.experiments import run_claim10


@pytest.fixture(scope="module")
def claim10():
    return run_claim10(delta=4, depth=10, ts=(1, 2), seed_radius=2,
                       verify_pairwise=False)


def test_bench_claim10(benchmark):
    result = benchmark.pedantic(
        run_claim10,
        kwargs={"delta": 4, "depth": 9, "ts": (1,), "seed_radius": 2,
                "verify_pairwise": True},
        rounds=1,
        iterations=1,
    )
    assert result.all_bounds_hold()
    assert result.points[0].pairwise_verified


def test_set_sizes_beat_closed_form(claim10):
    for point in claim10.points:
        if point.in_regime:
            assert point.set_size >= point.closed_form_bound


def test_larger_t_smaller_set(claim10):
    in_regime = [p for p in claim10.points if p.in_regime]
    sizes = [p.set_size for p in in_regime]
    assert sizes == sorted(sizes, reverse=True)


def test_global_ceiling_decays_with_set_size():
    # A local failure of 10% amplifies: the ceiling drops as n grows.
    small = claim10_global_success_bound(0.1, 10**6, 1)
    large = claim10_global_success_bound(0.1, 10**12, 1)
    assert large < small


def test_ceiling_below_half_for_large_n():
    assert claim10_global_success_bound(0.1, 10**15, 1) < 0.5
