"""Benchmark: Lemma 2 — the minimality reduction runs in O(1) rounds.

Plant distance-k weak c-colorings on growing trees; the reduction's
round count must be exactly flat in n, and must move only with (k, c).
"""

import pytest

from repro.experiments import run_lemma2

SIZES = (50, 200, 800, 3200)


def test_bench_lemma2(benchmark):
    result = benchmark.pedantic(
        run_lemma2, kwargs={"k": 2, "c": 4, "sizes": SIZES}, rounds=1, iterations=1
    )
    assert all(p.verified for p in result.points)


@pytest.mark.parametrize("k,c", [(1, 2), (2, 4), (3, 3), (2, 8)])
def test_rounds_flat_in_n(k, c):
    result = run_lemma2(k=k, c=c, sizes=SIZES)
    assert result.rounds_are_constant()
    assert all(p.verified for p in result.points)


def test_rounds_move_with_k():
    r2 = run_lemma2(k=2, c=4, sizes=(200, 800, 3200)).points[0].rounds
    r4 = run_lemma2(k=4, c=4, sizes=(200, 800, 3200)).points[0].rounds
    assert r4 == r2 + 2  # phase 1 costs exactly k rounds


def test_phase_accounting():
    result = run_lemma2(k=2, c=4, sizes=(200,))
    phases = result.points[0].phase_rounds
    assert phases["recolor"] == 2
    assert phases["pointer"] == 1
    assert phases["mis"] == 3
    assert sum(phases.values()) == result.points[0].rounds
