"""Benchmark regression guard for the vectorized local-round kernels.

Measures what ``layout="kernel"`` actually replaces: the **full
``simulate()``** of a round-based message-passing algorithm through the
reference per-node Python loop, against the registered SpMV-shaped
round kernel (:mod:`repro.local_model.kernels`), on the same Δ ∈ {4, 6}
balanced regular trees the CSR benchmark pins (n=4373 and n=4687).
Asserts

* the headline claim: **>= 5x speedup** on full ``simulate()`` for two
  round-based algorithms at n >= 4373 — Cole-Vishkin (both tree sizes)
  and flood-leader-parity — the numbers ``docs/PERFORMANCE.md`` and
  ``docs/KERNELS.md`` quote;
* no regression: each cell's speedup stays within **2x** of the
  committed baseline (the last entry of
  ``benchmarks/BENCH_kernels.json``) — a ratio of two timings on the
  same machine, so machine-independent;
* exactness, on every timed repeat: the kernel report's ``identity()``
  equals the reference report's, and ``info["kernel"]`` confirms the
  vectorized path actually ran (a silent fallback would "win" by 1x).

The ``tree-d4-weak-simulate`` cell tracks randomized weak coloring
(trajectory-guarded only): bit-parity requires the kernel to construct
the same n per-node ``random.Random`` streams the reference loop does,
and that shared Mersenne-Twister cost dominates both paths — the
honest ceiling is ~1.5x, which is exactly why the cell exists (a
"speedup" above the ceiling would mean the kernel stopped replicating
the reference's randomness).

The flood reference costs Θ(n²) node-steps (n rounds at horizon n) —
tens of seconds — so it is timed once per session while the kernel is
timed ``_REPEATS`` times, identity asserted on every timed repeat
against that one reference report.

Run with ``BENCH_UPDATE=1`` to append the current measurements as a new
trajectory entry (and commit the json); plain runs never write.
"""

from __future__ import annotations

import json
import os
import random
import time
from dataclasses import replace
from typing import Any, Dict

import pytest

from repro.algorithms.message_passing import (
    ColeVishkinMP,
    FloodLeaderParity,
    RandomizedWeakColoring,
)
from repro.core.direct import DirectEngine
from repro.core.engine import SimRequest
from repro.graphs import balanced_regular_tree
from repro.graphs.identifiers import random_permutation_ids

BENCH_PATH = os.path.join(os.path.dirname(__file__), "BENCH_kernels.json")

#: The measured grid.  Keep keys stable: they index the json trajectory.
#: ``ref_repeats`` bounds how often the slow reference loop is timed
#: (the flood reference is Θ(n²) node-steps; once is plenty).
CONFIGS = {
    "tree-d4-cv-simulate": {
        "delta": 4, "depth": 7, "algorithm": "cv", "ref_repeats": 5,
    },
    "tree-d6-cv-simulate": {
        "delta": 6, "depth": 5, "algorithm": "cv", "ref_repeats": 5,
    },
    "tree-d4-flood-simulate": {
        "delta": 4, "depth": 7, "algorithm": "flood", "ref_repeats": 1,
    },
    "tree-d4-weak-simulate": {
        "delta": 4, "depth": 7, "algorithm": "weak", "ref_repeats": 5,
    },
}

#: Cells that must meet the headline >= 5x bar: two round-based
#: algorithms on n >= 4373 graphs (the tentpole's acceptance
#: criterion).  Weak coloring is excluded by design — see the module
#: docstring's rng-parity ceiling.
HEADLINE_MIN_SPEEDUP = 5.0
HEADLINE_CONFIGS = (
    "tree-d4-cv-simulate", "tree-d6-cv-simulate", "tree-d4-flood-simulate",
)

#: Regression tolerance against the committed baseline speedup.
BASELINE_TOLERANCE = 2.0

_REPEATS = 5


def _cv_request(graph) -> SimRequest:
    """Pseudoforest inputs (point at the smallest neighbor, color = v)."""
    inputs = []
    for v in graph.nodes():
        nb = list(graph.neighbors(v))
        inputs.append((nb.index(min(nb)), v))
    return SimRequest(
        kind="local",
        graph=graph,
        algorithm=ColeVishkinMP(color_bits=(graph.n - 1).bit_length()),
        inputs=inputs,
        deterministic=True,
        label="bench-kernel-cv",
    )


def _flood_request(graph) -> SimRequest:
    return SimRequest(
        kind="local",
        graph=graph,
        algorithm=FloodLeaderParity(),
        ids=random_permutation_ids(graph, random.Random(5)),
        label="bench-kernel-flood",
    )


def _weak_request(graph) -> SimRequest:
    return SimRequest(
        kind="local",
        graph=graph,
        algorithm=RandomizedWeakColoring(),
        seed=7,
        label="bench-kernel-weak",
    )


_REQUESTS = {"cv": _cv_request, "flood": _flood_request, "weak": _weak_request}


def _measure(config: Dict[str, Any]) -> Dict[str, Any]:
    graph = balanced_regular_tree(config["delta"], config["depth"])
    request = _REQUESTS[config["algorithm"]](graph)
    engine = DirectEngine()
    kernel_request = replace(request, layout="kernel")
    # Untimed warmup: compile the CSR arrays and let the CPU leave its
    # idle frequency state.
    warm = engine.run(kernel_request)
    assert warm.info["kernel"] == "vectorized", (
        f"{request.label}: kernel fell back ({warm.info})"
    )
    ref_times = []
    for _ in range(config["ref_repeats"]):
        start = time.perf_counter()
        reference = engine.run(request)
        ref_times.append(time.perf_counter() - start)
    kernel_times = []
    for _ in range(_REPEATS):
        start = time.perf_counter()
        report = engine.run(kernel_request)
        kernel_times.append(time.perf_counter() - start)
        # Exactness on every timed repeat: bit-identical, and really
        # the vectorized path (not a quietly-fast fallback).
        assert report.identity() == reference.identity(), (
            f"{request.label}: kernel diverges from reference"
        )
        assert report.info["kernel"] == "vectorized"
    ref_s, kernel_s = min(ref_times), min(kernel_times)
    return {
        "n": graph.n,
        "rounds": reference.rounds,
        "reference_seconds": round(ref_s, 6),
        "kernel_seconds": round(kernel_s, 6),
        "speedup": round(ref_s / kernel_s, 3),
    }


def _load_bench() -> Dict[str, Any]:
    with open(BENCH_PATH, encoding="utf-8") as fh:
        return json.load(fh)


def _baseline() -> Dict[str, Any]:
    """The most recent committed trajectory entry."""
    return _load_bench()["trajectory"][-1]["results"]


@pytest.fixture(scope="module")
def measurements() -> Dict[str, Dict[str, Any]]:
    results = {name: _measure(config) for name, config in CONFIGS.items()}
    if os.environ.get("BENCH_UPDATE") == "1":
        data = _load_bench()
        data["trajectory"].append(
            {"entry": len(data["trajectory"]) + 1, "results": results}
        )
        with open(BENCH_PATH, "w", encoding="utf-8") as fh:
            json.dump(data, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return results


def test_baseline_file_is_committed():
    data = _load_bench()
    assert data["schema"] == "repro.bench-kernels/1"
    assert data["trajectory"], "baseline trajectory must not be empty"
    assert set(_baseline()) == set(CONFIGS)


@pytest.mark.parametrize("name", sorted(HEADLINE_CONFIGS))
def test_headline_speedup_on_full_simulate(measurements, name):
    result = measurements[name]
    assert result["n"] >= 4373
    assert result["speedup"] >= HEADLINE_MIN_SPEEDUP, (
        f"{name}: round kernel is only {result['speedup']}x faster "
        f"(need >= {HEADLINE_MIN_SPEEDUP}x)"
    )


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_speedup_within_tolerance_of_baseline(measurements, name):
    baseline = _baseline()[name]
    current = measurements[name]
    floor = baseline["speedup"] / BASELINE_TOLERANCE
    assert current["speedup"] >= floor, (
        f"{name}: speedup regressed to {current['speedup']}x, more than "
        f"{BASELINE_TOLERANCE}x below the committed {baseline['speedup']}x"
    )


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_round_counts_are_deterministic(measurements, name):
    # Round counts are functions of the graph and algorithm alone.
    baseline = _baseline()[name]
    current = measurements[name]
    assert current["n"] == baseline["n"]
    assert current["rounds"] == baseline["rounds"]
