"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's exhibits (Table 1,
Figures 1-2, or a headline claim) and asserts the *shape* the paper
reports — who wins, what grows, where the crossover falls — alongside
the timing pytest-benchmark records.  Run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest


def pytest_collection_modifyitems(items):
    """Keep benchmark runs quiet and ordered by experiment id."""
    items.sort(key=lambda item: item.nodeid)
