"""Benchmark regression guard for the batched CSR view core.

Measures what the CSR layout actually replaces: *class detection* — the
per-entity ``view_signature`` / ``edge_view_signature`` scan that the
memoizing backends spend their time in — against the batched
:class:`~repro.local_model.batch_views.BatchBallExpander` partition
over the compiled :class:`~repro.graphs.csr.CSRGraph` arrays, on the
same Δ ∈ {4, 6} balanced regular trees the view-cache benchmark pins
(n=4373 and n=4687, radius 2).  Asserts

* the headline claim: **>= 2.5x speedup** on both node-class cells —
  the numbers ``docs/PERFORMANCE.md`` quotes;
* no regression: each cell's speedup stays within **2x** of the
  committed baseline (the last entry of
  ``benchmarks/BENCH_csr_views.json``) — a ratio of two timings on the
  same machine, so machine-independent;
* exactness, every repeat: the batched partition is bit-identical to
  the reference-signature partition (same labels, same class count),
  and the end-to-end cached-engine cell produces identical reports on
  both layouts;
* determinism: class counts match the baseline *exactly* — they depend
  only on the graph, never on the machine.

The ``*-cached-run-*`` cell tracks the end-to-end engine win
(trajectory-guarded only: it includes per-miss gathers and cache
lookups common to both layouts, so its ratio is structurally smaller
than the class-detection cells').

Run with ``BENCH_UPDATE=1`` to append the current measurements as a new
trajectory entry (and commit the json); plain runs never write.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict

import pytest

from repro.algorithms.view_rules import make_view_rule
from repro.core.cached import CachedEngine
from repro.core.engine import SimRequest
from repro.graphs import balanced_regular_tree
from repro.local_model.batch_views import BatchBallExpander
from repro.local_model.views import edge_view_signature, view_signature

BENCH_PATH = os.path.join(os.path.dirname(__file__), "BENCH_csr_views.json")

#: The measured grid.  Keep keys stable: they index the json trajectory.
#: ``measure`` selects what the cell times: a node / edge class
#: partition (reference scan vs batched expander) or an end-to-end
#: cached-engine run (dict vs csr layout).
CONFIGS = {
    "tree-d4-node-classes-r2": {
        "delta": 4, "depth": 7, "radius": 2, "measure": "node-classes",
    },
    "tree-d6-node-classes-r2": {
        "delta": 6, "depth": 5, "radius": 2, "measure": "node-classes",
    },
    "tree-d4-edge-classes-r2": {
        "delta": 4, "depth": 7, "radius": 2, "measure": "edge-classes",
    },
    "tree-d4-cached-run-r2": {
        "delta": 4, "depth": 7, "radius": 2, "measure": "cached-run",
    },
}

#: Cells that must meet the headline >= 2.5x bar (class detection on
#: both regular-tree sizes — the tentpole's acceptance criterion).
HEADLINE_MIN_SPEEDUP = 2.5
HEADLINE_CONFIGS = ("tree-d4-node-classes-r2", "tree-d6-node-classes-r2")

#: Regression tolerance against the committed baseline speedup.
BASELINE_TOLERANCE = 2.0

_REPEATS = 5


def _assert_partition_exact(part, signatures) -> int:
    """Batched partition == reference partition; returns class count."""
    sig_label: Dict[Any, int] = {}
    labels = []
    for sig in signatures:
        labels.append(sig_label.setdefault(sig, len(sig_label)))
    assert part.path == "numpy"  # the cell must measure the fast path
    assert list(part.labels) == labels
    assert part.class_count == len(sig_label)
    return part.class_count


def _measure_node_classes(graph, radius: int) -> Dict[str, Any]:
    # One expander for all repeats, exactly like the engines (they
    # cache it on the graph's CSRGraph via ``expander_for``).
    expander = BatchBallExpander(graph)
    ref_times, csr_times = [], []
    for _ in range(_REPEATS):
        start = time.perf_counter()
        signatures = [
            view_signature(graph, v, radius) for v in graph.nodes()
        ]
        ref_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        part = expander.node_classes(radius)
        csr_times.append(time.perf_counter() - start)
        classes = _assert_partition_exact(part, signatures)
    return _cell(graph, ref_times, csr_times, classes)


def _measure_edge_classes(graph, radius: int) -> Dict[str, Any]:
    edges = list(graph.edges())
    expander = BatchBallExpander(graph)
    ref_times, csr_times = [], []
    for _ in range(_REPEATS):
        start = time.perf_counter()
        signatures = [
            edge_view_signature(graph, e, radius) for e in edges
        ]
        ref_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        part = expander.edge_classes(edges, radius)
        csr_times.append(time.perf_counter() - start)
        classes = _assert_partition_exact(part, signatures)
    return _cell(graph, ref_times, csr_times, classes)


def _measure_cached_run(graph, radius: int) -> Dict[str, Any]:
    rule = make_view_rule("ball-signature", radius=radius)
    ref_times, csr_times = [], []
    for _ in range(_REPEATS):
        reports = {}
        for layout, times in (("dict", ref_times), ("csr", csr_times)):
            request = SimRequest(
                kind="view", graph=graph, algorithm=rule, layout=layout,
                label="bench-csr",
            )
            engine = CachedEngine()  # fresh memo table per timing
            start = time.perf_counter()
            reports[layout] = engine.run(request)
            times.append(time.perf_counter() - start)
        assert reports["csr"].identity() == reports["dict"].identity()
        classes = reports["csr"].info["distinct_classes"]
    return _cell(graph, ref_times, csr_times, classes)


_MEASURES = {
    "node-classes": _measure_node_classes,
    "edge-classes": _measure_edge_classes,
    "cached-run": _measure_cached_run,
}


def _cell(graph, ref_times, csr_times, classes: int) -> Dict[str, Any]:
    ref_s, csr_s = min(ref_times), min(csr_times)
    return {
        "n": graph.n,
        "reference_seconds": round(ref_s, 6),
        "csr_seconds": round(csr_s, 6),
        "speedup": round(ref_s / csr_s, 3),
        "distinct_classes": classes,
    }


def _measure(config: Dict[str, Any]) -> Dict[str, Any]:
    graph = balanced_regular_tree(config["delta"], config["depth"])
    # Untimed warmup: build the CSR arrays and the expander's block
    # buffers, and let the CPU leave its idle frequency state — the
    # first seconds of a fresh process time everything ~20% slow.
    for v in range(0, graph.n, 7):
        view_signature(graph, v, config["radius"])
    BatchBallExpander(graph).node_classes(config["radius"])
    return _MEASURES[config["measure"]](graph, config["radius"])


def _load_bench() -> Dict[str, Any]:
    with open(BENCH_PATH, encoding="utf-8") as fh:
        return json.load(fh)


def _baseline() -> Dict[str, Any]:
    """The most recent committed trajectory entry."""
    return _load_bench()["trajectory"][-1]["results"]


@pytest.fixture(scope="module")
def measurements() -> Dict[str, Dict[str, Any]]:
    results = {name: _measure(config) for name, config in CONFIGS.items()}
    if os.environ.get("BENCH_UPDATE") == "1":
        data = _load_bench()
        data["trajectory"].append(
            {"entry": len(data["trajectory"]) + 1, "results": results}
        )
        with open(BENCH_PATH, "w", encoding="utf-8") as fh:
            json.dump(data, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return results


def test_baseline_file_is_committed():
    data = _load_bench()
    assert data["schema"] == "repro.bench-csr-views/1"
    assert data["trajectory"], "baseline trajectory must not be empty"
    assert set(_baseline()) == set(CONFIGS)


@pytest.mark.parametrize("name", sorted(HEADLINE_CONFIGS))
def test_headline_speedup_on_class_detection(measurements, name):
    result = measurements[name]
    assert result["n"] >= 2000
    assert result["speedup"] >= HEADLINE_MIN_SPEEDUP, (
        f"{name}: batched expander is only {result['speedup']}x faster "
        f"(need >= {HEADLINE_MIN_SPEEDUP}x)"
    )


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_speedup_within_tolerance_of_baseline(measurements, name):
    baseline = _baseline()[name]
    current = measurements[name]
    floor = baseline["speedup"] / BASELINE_TOLERANCE
    assert current["speedup"] >= floor, (
        f"{name}: speedup regressed to {current['speedup']}x, more than "
        f"{BASELINE_TOLERANCE}x below the committed {baseline['speedup']}x"
    )


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_class_counts_are_deterministic(measurements, name):
    # Class counts are functions of the graph alone.
    baseline = _baseline()[name]
    current = measurements[name]
    assert current["n"] == baseline["n"]
    assert current["distinct_classes"] == baseline["distinct_classes"]
