"""Benchmark: Theorem 5 — the homogeneous-LCL classification, realized.

One solver per class across an n-sweep: class (1) constant, class (2)
log*-flat, classes (3)/(4) logarithmic; every output verified by the
homogeneous verifier.
"""

import pytest

from repro.experiments import run_classification

SIZES = (50, 200, 800, 3200)


@pytest.fixture(scope="module")
def classification():
    return run_classification(delta=4, sizes=SIZES)


def test_bench_classification(benchmark):
    result = benchmark.pedantic(
        run_classification, kwargs={"delta": 4, "sizes": SIZES}, rounds=1, iterations=1
    )
    assert all(row.all_verified for row in result.rows)


def test_class1_is_constant(classification):
    row = classification.rows[0]
    assert row.fit.best == "constant"
    assert len({r for _, r in row.measurements}) == 1


def test_class2_flat_at_feasible_n(classification):
    row = classification.rows[1]
    rounds = [r for _, r in row.measurements]
    assert max(rounds) - min(rounds) <= 1  # log* is constant below 2^65536


def test_class34_is_logarithmic(classification):
    row = classification.rows[2]
    assert row.fit.best == "log"
    rounds = [r for _, r in row.measurements]
    assert rounds[-1] > rounds[0]


def test_classes_are_separated(classification):
    # At the largest size the three classes are strictly ordered:
    # constant < log-flavored rows.
    c1 = classification.rows[0].measurements[-1][1]
    c34 = classification.rows[2].measurements[-1][1]
    assert c1 < c34


def test_gap_between_constant_and_logstar(classification):
    # The paper's headline: nothing lives between omega(1) and
    # Theta(log* n).  Our class-(2) solver is the minimal nontrivial
    # one; its round count exceeds class (1)'s.
    c1 = classification.rows[0].measurements[-1][1]
    c2 = classification.rows[1].measurements[-1][1]
    assert c2 > c1
