"""Benchmark regression guard for the canonical-view cache.

Measures cached-vs-direct wall clock for radius-2 view rules on the
Δ ∈ {4, 6} balanced regular trees (n ≥ 2000 each) and asserts

* the headline claim: **>= 3x speedup** on the 4-regular tree — the
  number ``docs/PERFORMANCE.md`` quotes;
* no regression: each config's speedup stays within **2x** of the
  committed baseline (the last entry of
  ``benchmarks/BENCH_view_cache.json``).  Speedup is a ratio of two
  timings on the same machine, so the comparison is machine-independent
  in a way raw wall-clock thresholds are not;
* determinism: hit rate and distinct-class counts match the baseline
  *exactly* — they depend only on the graph, never on the machine.

Run with ``BENCH_UPDATE=1`` to append the current measurements as a new
trajectory entry (and commit the json); plain runs never write.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict

import pytest

from repro.algorithms.view_rules import make_view_rule
from repro.graphs import balanced_regular_tree
from repro.local_model import ViewCache
from repro.local_model.network import run_view_algorithm

BENCH_PATH = os.path.join(os.path.dirname(__file__), "BENCH_view_cache.json")

#: The measured grid.  Keep keys stable: they index the json trajectory.
CONFIGS = {
    "tree-d4-ball-signature-r2": {
        "delta": 4, "depth": 7, "rule": "ball-signature", "radius": 2,
    },
    "tree-d4-degree-profile-r2": {
        "delta": 4, "depth": 7, "rule": "degree-profile", "radius": 2,
    },
    "tree-d6-ball-signature-r2": {
        "delta": 6, "depth": 5, "rule": "ball-signature", "radius": 2,
    },
}

#: Configs that must meet the headline >= 3x bar (4-regular, radius 2).
HEADLINE_MIN_SPEEDUP = 3.0
HEADLINE_CONFIGS = ("tree-d4-ball-signature-r2", "tree-d4-degree-profile-r2")

#: Regression tolerance against the committed baseline speedup.
BASELINE_TOLERANCE = 2.0

_REPEATS = 3


def _measure(config: Dict[str, Any]) -> Dict[str, Any]:
    """Best-of-N cached and direct timings for one config."""
    graph = balanced_regular_tree(config["delta"], config["depth"])
    rule = make_view_rule(config["rule"], radius=config["radius"])
    direct_times, cached_times = [], []
    stats = None
    for _ in range(_REPEATS):
        start = time.perf_counter()
        direct = run_view_algorithm(graph, rule)
        direct_times.append(time.perf_counter() - start)
        cache = ViewCache()
        start = time.perf_counter()
        cached = run_view_algorithm(graph, rule, view_cache=cache)
        cached_times.append(time.perf_counter() - start)
        assert cached.outputs == direct.outputs  # exactness, every repeat
        stats = cache.stats
    direct_s, cached_s = min(direct_times), min(cached_times)
    return {
        "n": graph.n,
        "direct_seconds": round(direct_s, 6),
        "cached_seconds": round(cached_s, 6),
        "speedup": round(direct_s / cached_s, 3),
        "hit_rate": round(stats.hit_rate, 6),
        "distinct_classes": stats.distinct_classes,
    }


def _load_bench() -> Dict[str, Any]:
    with open(BENCH_PATH, encoding="utf-8") as fh:
        return json.load(fh)


def _baseline() -> Dict[str, Any]:
    """The most recent committed trajectory entry."""
    return _load_bench()["trajectory"][-1]["results"]


@pytest.fixture(scope="module")
def measurements() -> Dict[str, Dict[str, Any]]:
    results = {name: _measure(config) for name, config in CONFIGS.items()}
    if os.environ.get("BENCH_UPDATE") == "1":
        data = _load_bench()
        data["trajectory"].append(
            {"entry": len(data["trajectory"]) + 1, "results": results}
        )
        with open(BENCH_PATH, "w", encoding="utf-8") as fh:
            json.dump(data, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return results


def test_baseline_file_is_committed():
    data = _load_bench()
    assert data["schema"] == "repro.bench-view-cache/1"
    assert data["trajectory"], "baseline trajectory must not be empty"
    assert set(_baseline()) == set(CONFIGS)


@pytest.mark.parametrize("name", sorted(HEADLINE_CONFIGS))
def test_headline_speedup_on_4_regular_trees(measurements, name):
    result = measurements[name]
    assert result["n"] >= 2000
    assert result["speedup"] >= HEADLINE_MIN_SPEEDUP, (
        f"{name}: cached engine is only {result['speedup']}x faster "
        f"(need >= {HEADLINE_MIN_SPEEDUP}x)"
    )


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_speedup_within_tolerance_of_baseline(measurements, name):
    baseline = _baseline()[name]
    current = measurements[name]
    floor = baseline["speedup"] / BASELINE_TOLERANCE
    assert current["speedup"] >= floor, (
        f"{name}: speedup regressed to {current['speedup']}x, more than "
        f"{BASELINE_TOLERANCE}x below the committed {baseline['speedup']}x"
    )


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_cache_shape_is_deterministic(measurements, name):
    # Hit rate and class counts are functions of the graph alone.
    baseline = _baseline()[name]
    current = measurements[name]
    assert current["n"] == baseline["n"]
    assert current["distinct_classes"] == baseline["distinct_classes"]
    assert current["hit_rate"] == pytest.approx(baseline["hit_rate"])
