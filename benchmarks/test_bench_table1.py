"""Benchmark: Table 1 — the four complexity classes of homogeneous LCLs.

Regenerates every row of the paper's only table and asserts the shape:
2-coloring and sinkless orientation track Theta(log n), weak 2-coloring
on even degree stays in log* territory (flat at feasible n), and the
odd-degree row is exactly constant.
"""

import pytest

from repro.experiments import run_table1

SIZES = (50, 200, 800, 3200)


@pytest.fixture(scope="module")
def table1():
    return run_table1(sizes=SIZES)


def test_bench_table1_full(benchmark):
    """End-to-end regeneration of the table (all four rows, verified)."""
    result = benchmark.pedantic(run_table1, kwargs={"sizes": SIZES}, rounds=1, iterations=1)
    assert len(result.rows) == 4
    assert all(row.all_verified for row in result.rows)


def test_table1_row1_two_coloring_is_log(table1):
    row = table1.rows[0]
    assert row.example == "2-coloring"
    assert row.measured_class() == "log"
    rounds = [r for _, r in row.measurements]
    assert rounds == sorted(rounds) and rounds[-1] > rounds[0]


def test_table1_row2_sinkless_det_log_rand_small(table1):
    row = table1.rows[1]
    assert row.measured_class() == "log"
    # The randomized repair finishes in far fewer rounds than the
    # deterministic log-n route at the largest size (the paper's
    # det/rand separation, rendered at simulation scale).
    det = dict(row.measurements)
    rand = dict(row.randomized_measurements)
    largest = max(det)
    assert rand[largest] < det[largest]


def test_table1_row3_weak2_even_flat_at_feasible_n(table1):
    row = table1.rows[2]
    rounds = [r for _, r in row.measurements]
    # log* is <= 5 for every feasible n: the series must be flat-ish
    # (spread at most one CV iteration) — the log* growth itself is
    # exhibited by the identifier-space sweep bench.
    assert max(rounds) - min(rounds) <= 1


def test_table1_row4_weak2_odd_constant(table1):
    row = table1.rows[3]
    assert row.measured_class() == "constant"
    rounds = {r for _, r in row.measurements}
    assert len(rounds) == 1


def test_table1_ordering_matches_paper(table1):
    # Complexity classes must be ordered: row4 <= row3 <= row1/row2 at
    # the largest common size.
    at_largest = [row.measurements[-1][1] for row in table1.rows]
    assert at_largest[3] >= 0
    assert at_largest[2] <= at_largest[0] + 25  # log* row far below log rows' slope
    assert at_largest[0] >= 10  # the log rows genuinely grew
