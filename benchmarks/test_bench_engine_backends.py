"""Benchmark regression guard for the engine backends.

Measures direct vs cached vs sharded wall clock through the one
:func:`repro.core.simulate` facade on large view cells (balanced
regular trees, n >= 2000) and asserts

* the headline claim: the **sharded** backend is **>= 2x** faster than
  direct on the 4-regular radius-2 cells — the number
  ``docs/ENGINE.md``'s backend matrix is sized by;
* no regression: each config's sharded speedup stays within **2x** of
  the committed baseline (the last entry of
  ``benchmarks/BENCH_engine_backends.json``).  Speedup is a ratio of
  two timings on the same machine, so the comparison is
  machine-independent in a way raw wall-clock thresholds are not;
* exactness, every repeat: all three backends produce bit-identical
  ``SimReport.identity()`` projections;
* determinism: distinct-class counts match the baseline *exactly* —
  they depend only on the graph, never on the machine.

Run with ``BENCH_UPDATE=1`` to append the current measurements as a new
trajectory entry (and commit the json); plain runs never write.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict

import pytest

from repro.algorithms.view_rules import make_view_rule
from repro.core import SimRequest, simulate
from repro.graphs import balanced_regular_tree

BENCH_PATH = os.path.join(
    os.path.dirname(__file__), "BENCH_engine_backends.json"
)

#: The measured grid.  Keep keys stable: they index the json trajectory.
CONFIGS = {
    "tree-d4-ball-signature-r2": {
        "delta": 4, "depth": 7, "rule": "ball-signature", "radius": 2,
    },
    "tree-d4-degree-profile-r2": {
        "delta": 4, "depth": 7, "rule": "degree-profile", "radius": 2,
    },
    "tree-d6-ball-signature-r2": {
        "delta": 6, "depth": 5, "rule": "ball-signature", "radius": 2,
    },
}

#: Configs that must meet the headline >= 2x sharded-vs-direct bar.
HEADLINE_MIN_SPEEDUP = 2.0
HEADLINE_CONFIGS = ("tree-d4-ball-signature-r2", "tree-d4-degree-profile-r2")

#: Regression tolerance against the committed baseline speedup.
BASELINE_TOLERANCE = 2.0

_REPEATS = 5


def _measure(config: Dict[str, Any]) -> Dict[str, Any]:
    """Best-of-N timings per backend for one config."""
    graph = balanced_regular_tree(config["delta"], config["depth"])
    times: Dict[str, list] = {"direct": [], "cached": [], "sharded": []}
    reports: Dict[str, Any] = {}
    # Warmup outside the timed region: spawns the sharded backend's
    # persistent pool and touches every code path once.
    for backend in times:
        simulate(
            SimRequest(kind="view", graph=graph,
                       algorithm=make_view_rule(config["rule"],
                                                radius=config["radius"]),
                       label="warmup"),
            engine=backend,
        )
    for _ in range(_REPEATS):
        for backend in times:
            request = SimRequest(
                kind="view", graph=graph,
                algorithm=make_view_rule(config["rule"],
                                         radius=config["radius"]),
                label=f"bench-{config['rule']}",
            )
            start = time.perf_counter()
            reports[backend] = simulate(request, engine=backend)
            times[backend].append(time.perf_counter() - start)
        # Exactness, every repeat.
        reference = reports["direct"].identity()
        assert reports["cached"].identity() == reference
        assert reports["sharded"].identity() == reference
    best = {backend: min(samples) for backend, samples in times.items()}
    return {
        "n": graph.n,
        "direct_seconds": round(best["direct"], 6),
        "cached_seconds": round(best["cached"], 6),
        "sharded_seconds": round(best["sharded"], 6),
        "sharded_speedup": round(best["direct"] / best["sharded"], 3),
        "cached_speedup": round(best["direct"] / best["cached"], 3),
        "distinct_classes": reports["sharded"].info["distinct_classes"],
        "pooled": reports["sharded"].info["pooled"],
    }


def _load_bench() -> Dict[str, Any]:
    with open(BENCH_PATH, encoding="utf-8") as fh:
        return json.load(fh)


def _baseline() -> Dict[str, Any]:
    """The most recent committed trajectory entry."""
    return _load_bench()["trajectory"][-1]["results"]


@pytest.fixture(scope="module")
def measurements() -> Dict[str, Dict[str, Any]]:
    results = {name: _measure(config) for name, config in CONFIGS.items()}
    if os.environ.get("BENCH_UPDATE") == "1":
        if os.path.exists(BENCH_PATH):
            data = _load_bench()
        else:
            data = {"schema": "repro.bench-engine-backends/1", "trajectory": []}
        data["trajectory"].append(
            {"entry": len(data["trajectory"]) + 1, "results": results}
        )
        with open(BENCH_PATH, "w", encoding="utf-8") as fh:
            json.dump(data, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return results


def test_baseline_file_is_committed():
    data = _load_bench()
    assert data["schema"] == "repro.bench-engine-backends/1"
    assert data["trajectory"], "baseline trajectory must not be empty"
    assert set(_baseline()) == set(CONFIGS)


@pytest.mark.parametrize("name", sorted(HEADLINE_CONFIGS))
def test_headline_sharded_speedup(measurements, name):
    result = measurements[name]
    assert result["n"] >= 2000
    assert result["sharded_speedup"] >= HEADLINE_MIN_SPEEDUP, (
        f"{name}: sharded backend is only {result['sharded_speedup']}x "
        f"faster than direct (need >= {HEADLINE_MIN_SPEEDUP}x)"
    )


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_sharded_speedup_within_tolerance_of_baseline(measurements, name):
    baseline = _baseline()[name]
    current = measurements[name]
    floor = baseline["sharded_speedup"] / BASELINE_TOLERANCE
    assert current["sharded_speedup"] >= floor, (
        f"{name}: sharded speedup regressed to "
        f"{current['sharded_speedup']}x, more than {BASELINE_TOLERANCE}x "
        f"below the committed {baseline['sharded_speedup']}x"
    )


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_class_counts_are_deterministic(measurements, name):
    # Distinct classes are a function of the graph alone.
    baseline = _baseline()[name]
    current = measurements[name]
    assert current["n"] == baseline["n"]
    assert current["distinct_classes"] == baseline["distinct_classes"]
